"""§5.1.4 — static-analysis overhead.

The paper: "Our static analysis has an algorithm that is linear to the
length of the source code, and the analysis for most applications is
completed within 1-2 seconds."  We time ``catt_compile`` per application and
report seconds alongside source length.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..sim.arch import TITAN_V_SIM
from ..transform import catt_compile
from ..workloads import WORKLOADS, get_workload


@dataclass
class OverheadRow:
    app: str
    source_lines: int
    kernels: int
    seconds: float


def build_overhead(apps: list[str] | None = None,
                   scale: str = "bench") -> list[OverheadRow]:
    rows = []
    for app in apps or list(WORKLOADS):
        wl = get_workload(app, scale)
        src = wl.source()
        unit = wl.unit()
        launches = dict(wl.launch_configs())
        t0 = time.perf_counter()
        catt_compile(unit, launches, TITAN_V_SIM)
        dt = time.perf_counter() - t0
        rows.append(OverheadRow(
            app=app,
            source_lines=len(src.strip().splitlines()),
            kernels=len(launches),
            seconds=round(dt, 5),
        ))
    return rows


def format_overhead(rows: list[OverheadRow]) -> str:
    lines = [
        "§5.1.4 — CATT compile-time overhead",
        f"{'App':6s} {'lines':>6s} {'kernels':>8s} {'seconds':>9s}",
        "-" * 34,
    ]
    for r in rows:
        lines.append(f"{r.app:6s} {r.source_lines:6d} {r.kernels:8d} {r.seconds:9.5f}")
    total = sum(r.seconds for r in rows)
    lines.append("-" * 34)
    lines.append(f"total: {total:.4f}s for {len(rows)} applications")
    return "\n".join(lines)
