"""Table 3 — TLP per SM selected by BFTT and CATT at 32 KB and max L1D.

Regenerates the paper's per-loop ``(#warps_TB, #TBs)`` table for the CS
group.  CATT columns come from the static analysis alone (no simulation);
BFTT columns need its exhaustive sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import analyze_kernel
from ..workloads import CS_GROUP, get_workload
from .common import SPECS, ResultCache, default_cache, run_app


@dataclass
class Table3Row:
    app: str
    kernel: str
    loop: int | None          # None = kernel has no loop
    baseline: tuple[int, int]
    bftt_32k: tuple[int, int] | None
    catt_32k: tuple[int, int]
    bftt_max: tuple[int, int] | None
    catt_max: tuple[int, int]


def catt_loop_tlps(app: str, spec_name: str, scale: str = "bench"
                   ) -> dict[str, list[tuple[int | None, tuple[int, int], tuple[int, int]]]]:
    """kernel -> [(loop_id|None, baseline TLP, CATT TLP)], from analysis only."""
    spec = SPECS[spec_name]
    wl = get_workload(app, scale)
    unit = wl.unit()
    out: dict[str, list] = {}
    for kernel, (grid, block) in wl.launch_configs().items():
        analysis = analyze_kernel(unit, kernel, block, spec, grid=grid)
        base = analysis.baseline_tlp()
        rows = []
        if analysis.loops:
            for la in analysis.loops:
                rows.append((la.loop_id, base, la.decision.tlp))
        else:
            rows.append((None, base, base))
        out[kernel] = rows
    return out


def build_table3(
    apps: list[str] | None = None,
    scale: str = "bench",
    include_bftt: bool = True,
    cache: ResultCache | None = None,
) -> list[Table3Row]:
    apps = apps or CS_GROUP
    cache = cache or default_cache()
    rows: list[Table3Row] = []
    for app in apps:
        per_spec = {s: catt_loop_tlps(app, s, scale) for s in ("32k", "max")}
        bftt = {}
        if include_bftt:
            for s in ("32k", "max"):
                res = run_app(app, "bftt", s, scale, cache)
                bftt[s] = {
                    k: v.tlp for k, v in res.kernels.items()
                }
        for kernel in per_spec["max"]:
            for (loop_id, base, tlp_max), (_, _, tlp_32k) in zip(
                per_spec["max"][kernel], per_spec["32k"][kernel]
            ):
                rows.append(Table3Row(
                    app=app,
                    kernel=kernel,
                    loop=loop_id,
                    baseline=base,
                    bftt_32k=bftt.get("32k", {}).get(kernel),
                    catt_32k=tlp_32k,
                    bftt_max=bftt.get("max", {}).get(kernel),
                    catt_max=tlp_max,
                ))
    return rows


def format_table3(rows: list[Table3Row]) -> str:
    def tlp(t):
        return f"({t[0]},{t[1]})" if t else "  -  "

    lines = [
        f"{'App':6s} {'Kernel':18s} {'Loop':4s} {'Base':8s} "
        f"{'BFTT32K':8s} {'CATT32K':8s} {'BFTTmax':8s} {'CATTmax':8s}",
        "-" * 74,
    ]
    for r in rows:
        lines.append(
            f"{r.app:6s} {r.kernel:18s} {str(r.loop) if r.loop is not None else '-':4s} "
            f"{tlp(r.baseline):8s} {tlp(r.bftt_32k):8s} {tlp(r.catt_32k):8s} "
            f"{tlp(r.bftt_max):8s} {tlp(r.catt_max):8s}"
        )
    return "\n".join(lines)
