"""Crash-safe on-disk result storage: a sharded record store and a WAL.

Two durability primitives back the experiment harness:

:class:`ShardStore`
    A content-keyed, sharded JSON store.  Keys hash (sha256) onto a fixed
    number of shard files, so a ``put`` rewrites one small shard instead of
    the whole cache — the old single-file ``ResultCache`` paid O(N²) disk
    traffic over a sweep and lost records to last-writer-wins races when two
    processes shared the file.  Safety properties:

    * **per-shard locks** (``flock`` where available) make concurrent puts
      from multiple processes merge instead of clobber;
    * **atomic, fsync'd replace** — a crash between write and rename can
      never surface a torn shard, and a crash right after ``os.replace``
      cannot lose the rename to a dirty page;
    * **per-record integrity** — every record carries a sha256 over its
      canonical JSON payload, verified on read; a tampered or bit-rotted
      record reads as a miss, never as silent bad data;
    * **corrupt-shard quarantine** — an unparseable shard is renamed to
      ``<shard>.corrupt`` (monotonic ``.corrupt.N`` suffixes preserve the
      evidence of repeated corruption) and the store keeps working;
    * **canonical bytes** — shards serialize with sorted keys, so the
      on-disk bytes depend only on the *set* of records, not on insertion
      order: sequential, parallel, and resumed sweeps converge to identical
      files.

:class:`SweepWAL`
    An append-only, fsync'd write-ahead journal of completed sweep cells.
    The supervisor appends each finished cell as one integrity-checked JSON
    line; after a SIGKILL mid-sweep, ``--resume`` reloads the journal and
    recomputes only what is missing.  A torn tail line (the crash case) is
    skipped by the sha256 check, never mis-parsed.

Fault injection: shard writes call the ``"cache"`` boundary hooks from
:mod:`repro.testing.faults` — ``exc=OSError`` models disk-full (the put
degrades to memory-only with a warning), ``mode="truncate"`` models a torn
write (the next read quarantines the shard).
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from contextlib import contextmanager
from pathlib import Path

try:  # POSIX; the store degrades to lockless best-effort elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from ..obs.metrics_registry import registry as _registry
from ..testing.faults import InjectedFault, check_fault, mangle_write


def canonical_bytes(record) -> bytes:
    """The canonical JSON byte form of a record (sorted keys, no spaces)."""
    return json.dumps(record, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def record_digest(record) -> str:
    """sha256 hex digest over a record's canonical JSON payload."""
    return hashlib.sha256(canonical_bytes(record)).hexdigest()


def quarantine_file(path: Path) -> Path | None:
    """Move a corrupt artifact aside, never overwriting older evidence.

    The first quarantine of ``x`` lands at ``x.corrupt``; later ones at
    ``x.corrupt.1``, ``x.corrupt.2``, … (monotonic).  Returns the archive
    path, or ``None`` when the rename itself failed.
    """
    base = path.name + ".corrupt"
    archive = path.with_name(base)
    n = 0
    while archive.exists():
        n += 1
        archive = path.with_name(f"{base}.{n}")
    try:
        os.replace(path, archive)
    except OSError:
        return None
    return archive


def fsync_file(fh) -> None:
    """Flush + fsync one open file object (the crash-safety half of an
    atomic replace: without it, ``os.replace`` can publish a name whose
    *data* never reached the platter)."""
    fh.flush()
    os.fsync(fh.fileno())


def _fsync_dir(path: Path) -> None:
    """Best-effort directory fsync so a rename survives power loss."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(fd)


class ShardStore:
    """Sharded, integrity-checked dict-of-records on disk.

    ``root`` is a directory holding ``shard-00.json`` … ``shard-0f.json``
    (created lazily).  Records are plain JSON-serializable dicts; the store
    never interprets them beyond hashing.
    """

    SHARDS = 16

    def __init__(self, root: str | Path, version: int = 1):
        self.root = Path(root)
        self.version = version
        # Parsed shards memoized on (mtime_ns, size); invalidated whenever
        # another process replaced the file.
        self._memo: dict[int, tuple[tuple[int, int], dict]] = {}
        self.integrity_failures = 0
        self.quarantined = 0
        self.write_errors = 0

    # -- layout --------------------------------------------------------------
    @staticmethod
    def shard_of(key: str) -> int:
        return hashlib.sha256(key.encode("utf-8")).digest()[0] % ShardStore.SHARDS

    def shard_path(self, idx: int) -> Path:
        return self.root / f"shard-{idx:02x}.json"

    def shard_paths(self) -> list[Path]:
        """Every existing shard file, sorted by name (byte-compare order)."""
        return sorted(self.root.glob("shard-??.json"))

    def digest(self) -> str:
        """sha256 hex digest over every shard's name and bytes (sorted).

        Shards serialize canonically, so the digest is a pure function of
        the record set: two stores holding the same records — written by
        different processes, engines, or job counts — digest identically.
        This is the byte-identity receipt the service acceptance checks use.
        """
        h = hashlib.sha256()
        for path in self.shard_paths():
            try:
                data = path.read_bytes()
            except OSError:  # pragma: no cover - raced with quarantine
                continue
            h.update(path.name.encode("utf-8"))
            h.update(b"\x00")
            h.update(data)
            h.update(b"\x00")
        return h.hexdigest()

    # -- locking -------------------------------------------------------------
    @contextmanager
    def _shard_lock(self, idx: int):
        """Exclusive advisory lock serializing cross-process shard writes."""
        lock_path = self.root / f".shard-{idx:02x}.lock"
        fd = os.open(lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)

    # -- read path -----------------------------------------------------------
    def _load_shard(self, idx: int, fresh: bool = False) -> dict:
        path = self.shard_path(idx)
        try:
            st = path.stat()
        except OSError:
            self._memo.pop(idx, None)
            return {}
        sig = (st.st_mtime_ns, st.st_size)
        if not fresh:
            memoized = self._memo.get(idx)
            if memoized is not None and memoized[0] == sig:
                return memoized[1]
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            if not isinstance(payload, dict) or \
                    not isinstance(payload.get("records"), dict):
                raise ValueError("shard payload is not a records object")
        except OSError:
            return {}
        except (json.JSONDecodeError, ValueError):
            self._quarantine_shard(path)
            return {}
        if payload.get("version") != self.version:
            # Stale format: treated as empty; the next put rewrites it.
            return {}
        records = payload["records"]
        self._memo[idx] = (sig, records)
        return records

    def _quarantine_shard(self, path: Path) -> None:
        archive = quarantine_file(path)
        self.quarantined += 1
        self._memo.clear()
        reg = _registry()
        if reg.enabled:
            reg.counter("cache.shards_quarantined").inc()
        warnings.warn(
            f"result-cache shard {path} was corrupt; "
            + (f"archived to {archive} and " if archive else "")
            + "dropped from the store",
            RuntimeWarning,
            stacklevel=4,
        )

    def get(self, key: str) -> dict | None:
        """The record for ``key``, or ``None`` (missing *or* failed its
        integrity check — bad data is indistinguishable from no data)."""
        entry = self._load_shard(self.shard_of(key)).get(key)
        if entry is None:
            return None
        record = entry.get("record") if isinstance(entry, dict) else None
        if record is None or entry.get("sha256") != record_digest(record):
            self.integrity_failures += 1
            reg = _registry()
            if reg.enabled:
                reg.counter("cache.integrity_failures").inc()
            warnings.warn(
                f"result-cache record {key!r} failed its integrity check; "
                "treating as a miss",
                RuntimeWarning,
                stacklevel=3,
            )
            return None
        return record

    # -- write path ----------------------------------------------------------
    def put(self, key: str, record: dict) -> bool:
        """Write one record; returns False when the disk write failed (the
        caller's in-memory copy is then the only one)."""
        idx = self.shard_of(key)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            with self._shard_lock(idx):
                # Fresh read under the lock: merge concurrent writers'
                # records instead of clobbering them.
                records = dict(self._load_shard(idx, fresh=True))
                records[key] = {"record": record,
                                "sha256": record_digest(record)}
                self._write_shard(idx, records)
        except (OSError, InjectedFault) as exc:
            self.write_errors += 1
            reg = _registry()
            if reg.enabled:
                reg.counter("cache.write_errors").inc()
            warnings.warn(
                f"result-cache shard write failed ({exc}); record {key!r} "
                "is memory-only for this process",
                RuntimeWarning,
                stacklevel=3,
            )
            return False
        return True

    def _write_shard(self, idx: int, records: dict) -> None:
        path = self.shard_path(idx)
        site = path.name
        check_fault("cache", site)          # disk-full style injection
        payload = json.dumps({"version": self.version, "records": records},
                             sort_keys=True, indent=0).encode("utf-8")
        payload = mangle_write("cache", site, payload)   # torn-write injection
        tmp = path.with_name(path.name + f".tmp{os.getpid()}")
        with open(tmp, "wb") as fh:
            fh.write(payload)
            fsync_file(fh)
        os.replace(tmp, path)
        _fsync_dir(self.root)
        st = path.stat()
        self._memo[idx] = ((st.st_mtime_ns, st.st_size), records)


class SweepWAL:
    """Append-only journal of completed sweep cells (one JSON line each).

    Lines carry their own sha256, so a parent killed mid-append leaves at
    most one torn tail line, which :meth:`load` silently skips.  The first
    line is a header binding the journal to the cache format version — a
    stale journal (written by an older model) resumes as empty rather than
    resurrecting incompatible records.
    """

    VERSION = 1

    def __init__(self, path: str | Path, cache_version: int):
        self.path = Path(path)
        self.cache_version = cache_version
        self._fh = None
        self.dropped = 0     # invalid/torn lines skipped by the last load()

    def load(self) -> dict[str, dict]:
        """Replay the journal: ``{cache_key: record}`` for every intact line."""
        self.dropped = 0
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return {}
        lines = text.splitlines()
        if not lines:
            return {}
        try:
            header = json.loads(lines[0])
            ok = (header.get("wal") == self.VERSION
                  and header.get("cache_version") == self.cache_version)
        except (json.JSONDecodeError, AttributeError):
            ok = False
        if not ok:
            self.dropped = len(lines)
            return {}
        out: dict[str, dict] = {}
        for line in lines[1:]:
            try:
                obj = json.loads(line)
                key, record, sha = obj["key"], obj["record"], obj["sha256"]
            except (json.JSONDecodeError, KeyError, TypeError):
                self.dropped += 1
                continue
            if record_digest(record) != sha:
                self.dropped += 1
                continue
            out[key] = record
        return out

    def append(self, key: str, record: dict) -> None:
        """Durably journal one completed cell (fsync before returning)."""
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
            if self._fh.tell() == 0:
                self._fh.write(json.dumps(
                    {"wal": self.VERSION,
                     "cache_version": self.cache_version}) + "\n")
        self._fh.write(json.dumps(
            {"key": key, "record": record, "sha256": record_digest(record)},
            sort_keys=True) + "\n")
        fsync_file(self._fh)

    def exists(self) -> bool:
        return self.path.exists()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def discard(self) -> None:
        """Close and delete the journal (the sweep committed its results)."""
        self.close()
        try:
            self.path.unlink()
        except OSError:
            pass
