"""Figure 9 — sensitivity to thread-throttling factors (CS group).

For every CS app: normalized execution time at each fixed throttling factor
(the BFTT sweep), with the factor CATT selected marked.  Evaluates the
accuracy of the static analysis: for regular apps the star should sit at (or
next to) the sweep minimum.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..workloads import CS_GROUP
from .common import ResultCache, default_cache, run_app


@dataclass
class Fig9Curve:
    app: str
    # ordered (label, normalized time) from max TLP to min TLP
    points: list[tuple[str, float]]
    catt_choice: str | None         # label of the factor CATT's TLP matches
    best: str                       # label of the sweep minimum


def build_fig9(
    apps: list[str] | None = None,
    scale: str = "bench",
    spec_name: str = "max",
    cache: ResultCache | None = None,
) -> list[Fig9Curve]:
    apps = apps or CS_GROUP
    cache = cache or default_cache()
    curves = []
    for app in apps:
        base = run_app(app, "baseline", spec_name, scale, cache)
        bftt = run_app(app, "bftt", spec_name, scale, cache)
        catt = run_app(app, "catt", spec_name, scale, cache)
        if not bftt.sweep:
            continue
        points = []
        for label, entry in sorted(
            bftt.sweep.items(),
            key=lambda kv: tuple(int(x) for x in kv[0].split(",")),
        ):
            points.append((label, round(entry["total"] / base.total_cycles, 4)))
        # CATT's whole-app factor: approximate by its most-throttled loop.
        catt_label = None
        n_catt, m_catt = 1, 0
        for kernel, loops in catt.loop_tlps.items():
            base_tlp = base.kernels[kernel].tlp if kernel in base.kernels else None
            if base_tlp is None:
                continue
            for _loop_id, tlp in loops:
                if tlp[0] and base_tlp[0] % tlp[0] == 0:
                    n_catt = max(n_catt, base_tlp[0] // tlp[0])
                m_catt = max(m_catt, max(base_tlp[1] - tlp[1], 0))
        candidate = f"{n_catt},{m_catt}"
        if any(lbl == candidate for lbl, _ in points):
            catt_label = candidate
        best = min(points, key=lambda p: p[1])[0]
        curves.append(Fig9Curve(app, points, catt_label, best))
    return curves


def format_fig9(curves: list[Fig9Curve]) -> str:
    lines = ["Fig. 9 — normalized time vs throttling factor "
             "(label 'N,M'; * = CATT's choice, ! = sweep best)"]
    for c in curves:
        parts = []
        for label, value in c.points:
            mark = ""
            if label == c.catt_choice:
                mark += "*"
            if label == c.best:
                mark += "!"
            parts.append(f"{label}{mark}:{value:.3f}")
        lines.append(f"{c.app:6s} " + "  ".join(parts))
    return "\n".join(lines)
