"""Figure 2 — off-chip memory requests (after coalescing) over time, CS apps.

For each CS application, the baseline run's per-instruction transaction
trace.  The paper reads execution phases off these series (e.g. ATAX's
divergent first kernel vs. coalesced second kernel).
"""

from __future__ import annotations

from ..workloads import CS_GROUP
from .common import ResultCache, default_cache, run_app


def build_fig2(
    apps: list[str] | None = None,
    scale: str = "bench",
    spec_name: str = "max",
    cache: ResultCache | None = None,
) -> dict[str, list[tuple[int, int]]]:
    """app -> [(instruction sequence number, transactions)]."""
    apps = apps or CS_GROUP
    out = {}
    for app in apps:
        res = run_app(app, "baseline", spec_name, scale, cache or default_cache())
        out[app] = res.mem_trace or []
    return out


def phase_summary(trace: list[tuple[int, int]], buckets: int = 8) -> list[float]:
    """Mean transactions per instruction over ``buckets`` execution phases."""
    if not trace:
        return [0.0] * buckets
    end = trace[-1][0] + 1
    sums = [0.0] * buckets
    counts = [0] * buckets
    for x, y in trace:
        b = min(x * buckets // end, buckets - 1)
        sums[b] += y
        counts[b] += 1
    return [s / c if c else 0.0 for s, c in zip(sums, counts)]


def format_fig2(data: dict[str, list[tuple[int, int]]]) -> str:
    lines = [
        "Fig. 2 — mean off-chip requests per mem instruction, by execution phase",
        f"{'App':6s} " + " ".join(f"P{i:<5d}" for i in range(8)),
        "-" * 60,
    ]
    for app, trace in data.items():
        phases = phase_summary(trace)
        lines.append(f"{app:6s} " + " ".join(f"{p:6.1f}" for p in phases))
    return "\n".join(lines)
