"""Typed request/response protocol shared by Session and the CATT service.

One set of dataclasses describes every operation the pipeline exposes —
compile, analyze, catt (the transform pipeline), and run_app (one
experiment cell).  :meth:`repro.Session.request` executes them in-process;
:class:`repro.service.ServiceClient` ships them over a socket; the server
routes them through the same :mod:`repro.service.handlers`.  Because both
paths serialize through :func:`Response.to_payload`, a remote response is
byte-identical to a local one.

Wire format (newline-delimited JSON, one frame per line, canonical bytes —
sorted keys, compact separators)::

    → {"id": 7, "kind": "run_app", "payload": {...}, "deadline_s": 30, "v": 1}
    ← {"id": 7, "ok": true, "kind": "run_app", "payload": {...},
       "meta": {"cache_hit": false, "coalesced": true, ...}, "v": 1}
    ← {"id": 8, "ok": false, "error": {"code": "deadline", "message": "..."},
       "v": 1}

Responses may arrive out of request order (clients match on ``id``), which
is what lets a pipelined client sweep feed the server's batcher.

Identity
--------
:func:`request_key` is the content address used for caching and request
coalescing: sha256 over the canonical JSON of (kind, payload,
:meth:`SimOptions.signature() <repro.options.SimOptions.signature>`, spec).
Two requests with the same key are interchangeable — the service computes
one and fans the result out.  :func:`request_manifest` builds the signed
manifest over the same identity fields, so a Session run and a service run
of the same request carry the same manifest signature.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from typing import ClassVar

PROTOCOL_VERSION = 1

#: Error codes a server may return; clients surface them as ServiceError.
ERROR_CODES = (
    "bad-request",    # malformed frame / unknown kind / bad payload
    "unsupported",    # valid frame, but this endpoint cannot execute it
    "overloaded",     # backpressure: too many requests already in flight
    "draining",       # server is shutting down gracefully; retry elsewhere
    "deadline",       # the request's deadline_s elapsed before completion
    "internal",       # the computation itself raised
)


class ServiceError(Exception):
    """A protocol-level failure (either side), carrying a wire error code."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code
        self.message = message


def canonical_json(obj) -> str:
    """Canonical JSON text: sorted keys, compact separators.

    Every frame and every content hash uses this form, so identical
    payloads are identical *bytes* — the property the byte-identity
    acceptance checks (and response dedup) rest on.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def source_sha256(source: str) -> str:
    """Content address of one kernel source file."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def _plain(value):
    """Coerce tuples to lists recursively (JSON-serializable payload form)."""
    if isinstance(value, tuple):
        return [_plain(v) for v in value]
    if isinstance(value, list):
        return [_plain(v) for v in value]
    if isinstance(value, dict):
        return {k: _plain(v) for k, v in value.items()}
    return value


class _Message:
    """Shared payload plumbing for request/response dataclasses."""

    KIND: ClassVar[str] = ""

    def to_payload(self) -> dict:
        return {f.name: _plain(getattr(self, f.name)) for f in fields(self)}

    @classmethod
    def from_payload(cls, payload: dict):
        try:
            return cls(**payload)
        except TypeError as exc:
            raise ServiceError(
                "bad-request", f"invalid {cls.KIND!r} payload: {exc}"
            ) from None


# ---------------------------------------------------------------------------
# Compute requests — the pipeline operations Session and the service share
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CompileRequest(_Message):
    """Parse one CUDA-subset source into a translation unit."""

    KIND: ClassVar[str] = "compile"
    source: str


@dataclass(frozen=True)
class AnalyzeRequest(_Message):
    """CATT static analysis (Eqs. 1-9) for one kernel of ``source``."""

    KIND: ClassVar[str] = "analyze"
    source: str
    kernel: str
    block: int
    grid: int | None = None


@dataclass(frozen=True)
class CattRequest(_Message):
    """Run the full CATT transform pipeline on ``source``.

    ``launches`` accepts a ``{kernel: (grid, block)}`` dict or an iterable
    of pairs; it is normalized to a sorted tuple so equal requests hash to
    equal content addresses regardless of construction order.
    """

    KIND: ClassVar[str] = "catt"
    source: str
    launches: tuple = ()

    def __post_init__(self):
        items = (self.launches.items() if isinstance(self.launches, dict)
                 else self.launches)
        try:
            norm = tuple(sorted(
                (str(k), (int(g), int(b))) for k, (g, b) in items))
        except (TypeError, ValueError) as exc:
            raise ServiceError(
                "bad-request", f"invalid catt launches: {exc}") from None
        object.__setattr__(self, "launches", norm)

    def launch_dict(self) -> dict[str, tuple[int, int]]:
        return {k: v for k, v in self.launches}


@dataclass(frozen=True)
class RunAppRequest(_Message):
    """One (app, scheme, spec, scale) experiment cell."""

    KIND: ClassVar[str] = "run_app"
    app: str
    scheme: str
    spec: str = "max"
    scale: str = "bench"
    verify: bool = False

    @property
    def cell(self) -> tuple[str, str, str, str]:
        """The sweep-executor cell this request maps onto."""
        return (self.app, self.scheme, self.spec, self.scale)


# ---------------------------------------------------------------------------
# Control requests — service-side only (Session rejects them)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PingRequest(_Message):
    KIND: ClassVar[str] = "ping"


@dataclass(frozen=True)
class StatsRequest(_Message):
    KIND: ClassVar[str] = "stats"


@dataclass(frozen=True)
class ManifestRequest(_Message):
    KIND: ClassVar[str] = "manifest"


@dataclass(frozen=True)
class ShutdownRequest(_Message):
    """Ask the server to drain gracefully (same path as SIGTERM)."""

    KIND: ClassVar[str] = "shutdown"


# ---------------------------------------------------------------------------
# Responses
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CompileResponse(_Message):
    KIND: ClassVar[str] = "compile"
    kernels: tuple = ()
    source_sha256: str = ""

    def __post_init__(self):
        object.__setattr__(self, "kernels", tuple(self.kernels))


@dataclass(frozen=True)
class AnalyzeResponse(_Message):
    KIND: ClassVar[str] = "analyze"
    summary: dict = field(default_factory=dict)
    report: str = ""


@dataclass(frozen=True)
class CattResponse(_Message):
    KIND: ClassVar[str] = "catt"
    source: str = ""           # the transformed unit, emitted
    kernels: tuple = ()        # kernels the pipeline considered
    diagnostics: tuple = ()    # Diagnostic.to_dict() payloads

    def __post_init__(self):
        object.__setattr__(self, "kernels", tuple(self.kernels))
        object.__setattr__(self, "diagnostics", tuple(self.diagnostics))


@dataclass(frozen=True)
class RunAppResponse(_Message):
    KIND: ClassVar[str] = "run_app"
    result: dict = field(default_factory=dict)   # AppResult JSON form
    key: str = ""                                # the ResultCache key used


@dataclass(frozen=True)
class PingResponse(_Message):
    KIND: ClassVar[str] = "ping"
    version: int = PROTOCOL_VERSION


@dataclass(frozen=True)
class StatsResponse(_Message):
    KIND: ClassVar[str] = "stats"
    service: dict = field(default_factory=dict)   # server-side counters
    metrics: dict = field(default_factory=dict)   # obs registry snapshot


@dataclass(frozen=True)
class ManifestResponse(_Message):
    KIND: ClassVar[str] = "manifest"
    manifest: dict = field(default_factory=dict)  # signed RunManifest dict


@dataclass(frozen=True)
class ShutdownResponse(_Message):
    KIND: ClassVar[str] = "shutdown"
    draining: bool = True


#: Requests a Session can execute in-process.
COMPUTE_REQUESTS = {cls.KIND: cls for cls in
                    (CompileRequest, AnalyzeRequest, CattRequest,
                     RunAppRequest)}
#: Requests only the server answers (introspection / lifecycle).
CONTROL_REQUESTS = {cls.KIND: cls for cls in
                    (PingRequest, StatsRequest, ManifestRequest,
                     ShutdownRequest)}
REQUESTS = {**COMPUTE_REQUESTS, **CONTROL_REQUESTS}
RESPONSES = {cls.KIND: cls for cls in
             (CompileResponse, AnalyzeResponse, CattResponse,
              RunAppResponse, PingResponse, StatsResponse,
              ManifestResponse, ShutdownResponse)}


# ---------------------------------------------------------------------------
# Identity: content addresses and signed manifests
# ---------------------------------------------------------------------------


def request_key(req: _Message, signature: str = "", spec: str = "max") -> str:
    """Content address of one request under one configuration.

    ``signature`` is :meth:`SimOptions.signature` (the canonical config
    identity — only knobs that change simulation results participate);
    ``spec`` the GPU spec name.  Equal keys ⇒ interchangeable results, which
    is exactly the coalescing and cache contract.
    """
    body = {"kind": req.KIND, "payload": req.to_payload(),
            "options": signature, "spec": spec, "v": PROTOCOL_VERSION}
    return hashlib.sha256(canonical_json(body).encode("utf-8")).hexdigest()


def request_manifest(req: _Message, options, spec_name: str = "max"):
    """Signed :class:`~repro.obs.manifest.RunManifest` over the request's
    identity fields.

    Built from the same inputs on both sides of the wire, so a service
    response's ``meta["manifest_signature"]`` equals the signature a local
    Session run of the same request produces — the byte-identity receipt.
    """
    from ..obs.manifest import build_manifest

    if isinstance(req, RunAppRequest):
        spec_name = req.spec
    return build_manifest(
        command=f"service.{req.KIND}",
        config={"kind": req.KIND, "request": req.to_payload(),
                "signature": options.signature(), "spec": spec_name},
    )


# ---------------------------------------------------------------------------
# Wire framing
# ---------------------------------------------------------------------------


def encode_request(req: _Message, req_id: int,
                   deadline_s: float | None = None) -> dict:
    frame = {"id": req_id, "kind": req.KIND, "payload": req.to_payload(),
             "v": PROTOCOL_VERSION}
    if deadline_s is not None:
        frame["deadline_s"] = float(deadline_s)
    return frame


def decode_request(frame) -> tuple:
    """``(id, request, deadline_s)`` from a wire frame; raises ServiceError."""
    if not isinstance(frame, dict):
        raise ServiceError("bad-request", "frame is not a JSON object")
    rid = frame.get("id")
    kind = frame.get("kind")
    cls = REQUESTS.get(kind)
    if cls is None:
        raise ServiceError("bad-request", f"unknown request kind {kind!r}")
    payload = frame.get("payload") or {}
    if not isinstance(payload, dict):
        raise ServiceError("bad-request", "payload is not a JSON object")
    deadline = frame.get("deadline_s")
    if deadline is not None:
        if not isinstance(deadline, (int, float)) or deadline <= 0:
            raise ServiceError("bad-request",
                               f"deadline_s must be positive, got {deadline!r}")
        deadline = float(deadline)
    return rid, cls.from_payload(payload), deadline


def encode_response(req_id, resp: _Message, meta: dict | None = None) -> dict:
    return {"id": req_id, "ok": True, "kind": resp.KIND,
            "payload": resp.to_payload(), "meta": meta or {},
            "v": PROTOCOL_VERSION}


def encode_error(req_id, code: str, message: str) -> dict:
    return {"id": req_id, "ok": False,
            "error": {"code": code, "message": message},
            "v": PROTOCOL_VERSION}


def decode_response(frame) -> tuple:
    """``(id, response_or_ServiceError, meta)`` from a wire frame.

    A malformed frame raises; a well-formed *error* frame returns the
    ServiceError as the second element (the caller decides when to raise,
    which keeps pipelined clients able to match errors to request ids).
    """
    if not isinstance(frame, dict):
        raise ServiceError("bad-request", "response frame is not an object")
    rid = frame.get("id")
    if not frame.get("ok"):
        err = frame.get("error") or {}
        return rid, ServiceError(err.get("code", "internal"),
                                 err.get("message", "unknown error")), {}
    cls = RESPONSES.get(frame.get("kind"))
    if cls is None:
        raise ServiceError("bad-request",
                           f"unknown response kind {frame.get('kind')!r}")
    return (rid, cls.from_payload(frame.get("payload") or {}),
            frame.get("meta") or {})


def dump_frame(frame: dict) -> bytes:
    """One canonical wire line (newline-terminated bytes)."""
    return canonical_json(frame).encode("utf-8") + b"\n"


def load_frame(line: bytes) -> dict:
    try:
        frame = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServiceError("bad-request", f"undecodable frame: {exc}") from None
    if not isinstance(frame, dict):
        raise ServiceError("bad-request", "frame is not a JSON object")
    return frame
