"""End-to-end service smoke test (the CI ``service-smoke`` job).

Drives a real ``catt serve`` subprocess through its full lifecycle::

    python -m repro.service.smoke --scale test

1. start a server on a fresh unix socket + sharded cache directory;
2. run a pipelined client sweep (cold): every cell simulates, the server's
   ``sim.launches`` counter is nonzero, and its signed manifest verifies;
3. SIGTERM the server and assert it drains cleanly (exit code 0);
4. start a *second* server on the same cache directory;
5. run the identical sweep again (warm): every response reports
   ``cache_hit`` and is byte-identical to the cold run, and the warm
   server's ``sim.launches`` counter is **zero** — the service did no
   simulation work at all;
6. assert the cache digest is unchanged by the warm run, and drain again.

Exit code 0 = all assertions held.  Failures print the first violated
assertion and exit 1 — this is a gate, not a benchmark.
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from .client import ServiceClient
from .protocol import canonical_json

#: Small but representative: two cache-sensitive apps, two schemes.
SMOKE_CELLS = (
    ("ATAX", "baseline", "max", "test"),
    ("ATAX", "catt", "max", "test"),
    ("MVT", "baseline", "max", "test"),
    ("MVT", "catt", "max", "test"),
)


def _start_server(socket_path: Path, cache_dir: Path) -> subprocess.Popen:
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.experiments.runner", "serve",
         "--socket", str(socket_path), "--cache", str(cache_dir),
         "--batch-window", "0.05"],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )


def _stop_server(proc: subprocess.Popen, timeout: float = 30.0) -> int:
    """SIGTERM → graceful drain; returns the exit code."""
    proc.send_signal(signal.SIGTERM)
    try:
        proc.wait(timeout=timeout)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait()
        raise AssertionError("server did not drain within the timeout")
    return proc.returncode


def _server_output(proc: subprocess.Popen) -> str:
    try:
        out = proc.stdout.read() if proc.stdout else b""
    except Exception:
        out = b""
    return out.decode("utf-8", "replace")


def _counters(client: ServiceClient) -> dict:
    return client.stats().metrics.get("counters", {})


def run_smoke(scale: str = "test", keep: bool = False) -> int:
    from ..obs.manifest import RunManifest, verify_manifest

    cells = tuple((app, scheme, spec, scale)
                  for app, scheme, spec, _ in SMOKE_CELLS)
    tmp = Path(tempfile.mkdtemp(prefix="catt-service-smoke-"))
    socket_path = tmp / "catt.sock"
    cache_dir = tmp / "cache"
    proc = None
    try:
        # -- cold run ---------------------------------------------------------
        proc = _start_server(socket_path, cache_dir)
        client = ServiceClient(socket_path=socket_path)
        client.wait_until_ready(timeout=60.0)

        manifest = RunManifest(**client.manifest().manifest)
        assert verify_manifest(manifest), \
            "cold server manifest failed signature verification"

        t0 = time.perf_counter()
        cold = client.sweep(cells)
        cold_s = time.perf_counter() - t0
        for i, resp in enumerate(cold):
            assert not isinstance(resp, Exception), \
                f"cold cell {cells[i]} failed: {resp}"
            assert resp.result.get("total_cycles", 0) > 0, \
                f"cold cell {cells[i]} returned no cycles"
        cold_payloads = [canonical_json(r.to_payload()) for r in cold]

        counters = _counters(client)
        launches = counters.get("sim.launches", 0)
        assert launches > 0, "cold run should have simulated kernel launches"
        service_stats = client.stats().service
        print(f"cold sweep: {len(cells)} cells in {cold_s:.1f}s, "
              f"{launches} kernel launches, "
              f"{service_stats['batches']} batch(es)")

        cold_digest_resp = client.run_app(*cells[0])  # warm within-process hit
        assert client.last_meta.get("cache_hit"), \
            "repeat request on a live server should be a cache hit"
        assert canonical_json(cold_digest_resp.to_payload()) == \
            cold_payloads[0], "live-server cache hit changed the payload"

        client.close()
        code = _stop_server(proc)
        assert code == 0, f"cold server exited {code} on SIGTERM"
        proc = None
        cold_digest = _cache_digest(cache_dir)
        assert cold_digest, "cold run left no cache on disk"

        # -- warm run (fresh process, same cache) -----------------------------
        proc = _start_server(socket_path, cache_dir)
        client = ServiceClient(socket_path=socket_path)
        client.wait_until_ready(timeout=60.0)

        warm = client.sweep(cells)
        for i, resp in enumerate(warm):
            assert not isinstance(resp, Exception), \
                f"warm cell {cells[i]} failed: {resp}"
        warm_payloads = [canonical_json(r.to_payload()) for r in warm]
        assert warm_payloads == cold_payloads, \
            "warm responses are not byte-identical to the cold run"
        metas = client.last_meta
        assert all(m.get("cache_hit") for m in metas.values()), \
            f"warm run was not fully cache-served: {metas}"

        counters = _counters(client)
        assert counters.get("sim.launches", 0) == 0, \
            (f"warm run performed {counters.get('sim.launches')} kernel "
             "launches; expected a zero-launch cache-warm no-op")
        manifest = RunManifest(**client.manifest().manifest)
        assert verify_manifest(manifest), \
            "warm server manifest failed signature verification"
        assert _cache_digest(cache_dir) == cold_digest, \
            "warm run modified the cache bytes"
        print(f"warm sweep: {len(cells)} cells, all cache hits, "
              "0 kernel launches, cache digest unchanged")

        client.close()
        code = _stop_server(proc)
        assert code == 0, f"warm server exited {code} on SIGTERM"
        proc = None
        print("service smoke PASSED")
        return 0
    except AssertionError as exc:
        print(f"service smoke FAILED: {exc}", file=sys.stderr)
        if proc is not None and proc.poll() is None:
            proc.kill()
            proc.wait()
        if proc is not None:
            print("--- server output ---", file=sys.stderr)
            print(_server_output(proc), file=sys.stderr)
        return 1
    finally:
        if proc is not None and proc.poll() is None:
            proc.kill()
            proc.wait()
        if not keep:
            import shutil

            shutil.rmtree(tmp, ignore_errors=True)
        else:
            print(f"artifacts kept at {tmp}")


def _cache_digest(cache_dir: Path) -> str:
    from ..experiments.store import ShardStore

    return ShardStore(cache_dir).digest()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="test", choices=["test", "bench"])
    parser.add_argument("--keep", action="store_true",
                        help="keep the temporary cache/socket dir")
    args = parser.parse_args(argv)
    return run_smoke(scale=args.scale, keep=args.keep)


if __name__ == "__main__":
    sys.exit(main())
