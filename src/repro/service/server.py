"""The asyncio CATT service behind ``catt serve``.

One long-lived :class:`repro.Session` (and therefore one shared
crash-safe :class:`~repro.experiments.store.ShardStore`-backed result
cache) serves compile/analyze/catt/run_app requests from any number of
clients over a unix socket and/or TCP, speaking the newline-delimited JSON
protocol of :mod:`repro.service.protocol`.

Request lifecycle::

    wire frame → decode → [control?] → backpressure gate → identity key
        → cache probe → coalesce/batch → compute (single session thread,
          sweeps fan out over the supervisor's worker processes)
        → typed response + meta {cache_hit, coalesced, manifest_signature}

Properties:

* **Coalescing** — concurrent identical requests (same content address:
  request payload + ``SimOptions.signature()`` + spec) share exactly one
  in-flight computation; ``service.coalesced`` counts the joiners.
* **Batching** — run_app cells arriving within ``batch_window`` seconds
  execute as ONE supervisor-backed sweep (``Session.sweep``), so a
  pipelined client sweep parallelizes across ``--jobs`` worker processes.
* **Persistence** — results land in the sharded store; a restarted server
  (or a plain in-process Session pointed at the same directory) serves
  them as cache hits with zero kernel launches.
* **Backpressure** — at most ``max_pending`` compute requests may be in
  flight; excess requests fail fast with ``overloaded`` instead of
  queueing unboundedly.
* **Deadlines** — a request's ``deadline_s`` bounds *its* wait; on expiry
  the client gets a ``deadline`` error while the shielded computation
  finishes for the cache and any coalesced waiters.
* **Graceful drain** — SIGTERM/SIGINT (or a shutdown request) stops
  accepting work, lets in-flight requests finish, flushes the session
  cache, and exits 0.

All session/cache access runs on ONE compute thread (the sweep itself
fans out over processes), so the process-global SimOptions/observability
state the pipeline scopes per call is never touched concurrently.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import signal
import sys
from pathlib import Path

from ..obs.metrics_registry import registry as _registry
from ..options import SimOptions
from .batcher import Coalescer, SweepBatcher
from .protocol import (
    CattRequest,
    CattResponse,
    CompileRequest,
    CompileResponse,
    ManifestRequest,
    ManifestResponse,
    PingRequest,
    PingResponse,
    RunAppRequest,
    RunAppResponse,
    ServiceError,
    ShutdownRequest,
    ShutdownResponse,
    StatsRequest,
    StatsResponse,
    decode_request,
    dump_frame,
    encode_error,
    encode_response,
    load_frame,
    request_key,
    request_manifest,
)

#: Stat fields every server tracks (mirrored to obs ``service.*`` counters).
STAT_FIELDS = ("requests", "coalesced", "cache_hits", "errors", "rejected",
               "executed_cells", "batches", "connections")


class CattServer:
    """The service: transport + coalescing/batching over one Session."""

    def __init__(self, spec: str = "max", options: SimOptions | None = None,
                 *, socket_path: str | Path | None = None,
                 host: str | None = None, port: int | None = None,
                 batch_window: float = 0.02, max_pending: int = 128,
                 drain_timeout: float = 60.0):
        from ..api import Session

        if socket_path is None and port is None:
            raise ValueError("serve needs a unix --socket and/or a TCP --port")
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.session = Session(spec, options)
        self.options = self.session.options
        self.socket_path = Path(socket_path) if socket_path else None
        self.host = host or "127.0.0.1"
        self.port = port
        self.batch_window = batch_window
        self.max_pending = max_pending
        self.drain_timeout = drain_timeout
        self.stats: dict[str, int] = {f: 0 for f in STAT_FIELDS}
        self.endpoints: list[str] = []
        self._coalescer = Coalescer()
        self._batcher = SweepBatcher(self._run_batch, window=batch_window)
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="catt-service")
        self._servers: list[asyncio.AbstractServer] = []
        self._inflight = 0
        self._draining = False
        self._done: asyncio.Event | None = None
        self._request_store = None   # lazily-built persistent response cache

    # -- counters -------------------------------------------------------------
    def _count(self, name: str, n: int = 1) -> None:
        self.stats[name] = self.stats.get(name, 0) + n
        reg = _registry()
        if reg.enabled:
            reg.counter(f"service.{name}").inc(n)

    def _gauge_inflight(self) -> None:
        reg = _registry()
        if reg.enabled:
            reg.gauge("service.inflight").set(self._inflight)

    # -- lifecycle ------------------------------------------------------------
    async def start(self) -> None:
        """Bind the configured endpoints (idempotent per server)."""
        self._done = asyncio.Event()
        if self.socket_path is not None:
            self.socket_path.parent.mkdir(parents=True, exist_ok=True)
            if self.socket_path.exists():
                self.socket_path.unlink()
            srv = await asyncio.start_unix_server(
                self._serve_conn, path=str(self.socket_path))
            self._servers.append(srv)
            self.endpoints.append(f"unix:{self.socket_path}")
        if self.port is not None:
            srv = await asyncio.start_server(
                self._serve_conn, host=self.host, port=self.port)
            self._servers.append(srv)
            for sock in srv.sockets or []:
                addr = sock.getsockname()
                self.endpoints.append(f"tcp:{addr[0]}:{addr[1]}")
                if self.port == 0:
                    self.port = addr[1]
        if not self._servers:  # pragma: no cover - guarded in __init__
            raise ServiceError("internal", "no endpoint could be bound")

    async def serve_until_drained(self) -> None:
        """Run until :meth:`drain` completes (signal, shutdown request)."""
        assert self._done is not None, "call start() first"
        await self._done.wait()

    async def drain(self) -> None:
        """Stop accepting work, let in-flight requests finish, flush, exit.

        New compute requests observe ``draining`` the moment this is
        called; already-admitted requests run to completion (bounded by
        ``drain_timeout``), the session cache is flushed, and
        ``serve_until_drained`` returns.
        """
        if self._draining:
            return
        self._draining = True
        for srv in self._servers:
            srv.close()
        try:
            await asyncio.wait_for(self._batcher.join(),
                                   timeout=self.drain_timeout)
        except asyncio.TimeoutError:  # pragma: no cover - hung computation
            pass
        # The coalescer drains itself as leaders finish; give them the same
        # grace by polling until empty or the timeout elapses.
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.drain_timeout
        while (len(self._coalescer) or self._inflight) \
                and loop.time() < deadline:
            await asyncio.sleep(0.01)
        await loop.run_in_executor(self._pool, self.session.close)
        if self._done is not None:
            self._done.set()

    async def aclose(self) -> None:
        for srv in self._servers:
            srv.close()
            try:
                await srv.wait_closed()
            except Exception:  # pragma: no cover
                pass
        self._servers = []
        self._pool.shutdown(wait=True)
        if self.socket_path is not None:
            try:
                self.socket_path.unlink()
            except OSError:
                pass

    def install_signal_handlers(self, loop) -> None:
        """SIGTERM/SIGINT → graceful drain (the ``catt serve`` contract)."""
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, lambda: asyncio.ensure_future(self.drain()))
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass   # platforms without loop signal support

    # -- connection handling --------------------------------------------------
    async def _serve_conn(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        self._count("connections")
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()

        async def respond(raw_line: bytes) -> None:
            try:
                frame = load_frame(raw_line)
            except ServiceError as exc:
                out = encode_error(None, exc.code, exc.message)
            else:
                out = await self.handle(frame)
            async with write_lock:
                writer.write(dump_frame(out))
                try:
                    await writer.drain()
                except (ConnectionError, RuntimeError):  # peer went away
                    pass

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.ensure_future(respond(line))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            if tasks:
                await asyncio.wait(tasks)
        finally:
            for task in tasks:
                task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, Exception):  # pragma: no cover
                pass

    # -- request handling -----------------------------------------------------
    async def handle(self, frame: dict) -> dict:
        """Process one request frame into one response frame.

        Transport-agnostic: tests drive this directly, connections feed it
        from the socket reader loop.
        """
        rid = frame.get("id") if isinstance(frame, dict) else None
        try:
            rid, req, deadline = decode_request(frame)
        except ServiceError as exc:
            self._count("errors")
            return encode_error(rid, exc.code, exc.message)
        self._count("requests")

        # Control requests answer inline — they stay available while
        # draining so clients can observe the shutdown.
        if isinstance(req, PingRequest):
            return encode_response(rid, PingResponse())
        if isinstance(req, StatsRequest):
            return encode_response(rid, StatsResponse(
                service=self.service_stats(),
                metrics=_registry().snapshot()))
        if isinstance(req, ManifestRequest):
            return encode_response(rid, ManifestResponse(
                manifest=self.build_manifest().to_dict()))
        if isinstance(req, ShutdownRequest):
            asyncio.ensure_future(self.drain())
            return encode_response(rid, ShutdownResponse(draining=True))

        if self._draining:
            self._count("errors")
            return encode_error(rid, "draining",
                                "server is draining; not accepting work")
        if self._inflight >= self.max_pending:
            self._count("rejected")
            return encode_error(
                rid, "overloaded",
                f"{self._inflight} requests already in flight "
                f"(max_pending={self.max_pending})")

        self._inflight += 1
        self._gauge_inflight()
        try:
            resp, meta = await self._execute(req, deadline)
        except ServiceError as exc:
            self._count("errors")
            return encode_error(rid, exc.code, exc.message)
        except Exception as exc:  # noqa: BLE001 - reported to the client
            self._count("errors")
            return encode_error(rid, "internal", repr(exc))
        finally:
            self._inflight -= 1
            self._gauge_inflight()
        return encode_response(rid, resp, meta)

    async def _execute(self, req, deadline: float | None):
        """Compute one request: cache probe → coalesce/batch → response."""
        spec_name = req.spec if isinstance(req, RunAppRequest) \
            else self.session.spec_name
        key = request_key(req, self.options.signature(), spec_name)
        meta = {
            "key": key,
            "cache_hit": False,
            "coalesced": False,
            "manifest_signature": request_manifest(
                req, self.options, spec_name).signature,
        }
        loop = asyncio.get_running_loop()

        if isinstance(req, RunAppRequest):
            cached = await loop.run_in_executor(
                self._pool, self._cached_cell, req)
            if cached is not None:
                self._count("cache_hits")
                meta["cache_hit"] = True
                return RunAppResponse(result=cached, key=self._cell_key(req)), meta
            fut, coalesced = self._batcher.submit(req.cell)
            if coalesced:
                self._count("coalesced")
                meta["coalesced"] = True
            record = await self._await_deadline(fut, deadline)
            if record is None:
                raise ServiceError(
                    "internal", f"cell {req.cell} produced no result")
            return RunAppResponse(result=record, key=self._cell_key(req)), meta

        # compile / analyze / catt: persistent response cache, then coalesce.
        cached = await loop.run_in_executor(self._pool,
                                            self._request_cache_get, key)
        if cached is not None:
            self._count("cache_hits")
            meta["cache_hit"] = True
            return self._decode_cached(req, cached), meta

        async def start():
            return await loop.run_in_executor(self._pool,
                                              self._compute_and_store,
                                              req, key)

        fut, coalesced = self._coalescer.claim(key, start)
        if coalesced:
            self._count("coalesced")
            meta["coalesced"] = True
        resp = await self._await_deadline(fut, deadline)
        return resp, meta

    @staticmethod
    async def _await_deadline(fut, deadline: float | None):
        """Await a shared computation, bounded by this request's deadline.

        The shield keeps the underlying computation alive on timeout: the
        cache and any coalesced waiters still get the result; only this
        request's wait is cut short.
        """
        if deadline is None:
            return await asyncio.shield(fut)
        try:
            return await asyncio.wait_for(asyncio.shield(fut), deadline)
        except asyncio.TimeoutError:
            raise ServiceError(
                "deadline",
                f"request exceeded its {deadline}s deadline (the "
                "computation continues for the cache)") from None

    # -- compute-thread helpers (everything below runs on self._pool) ---------
    def _cell_key(self, req: RunAppRequest) -> str:
        from ..experiments.common import ResultCache

        return ResultCache.key(req.app, req.scheme, req.spec, req.scale,
                               signature=self.options.signature())

    def _cached_cell(self, req: RunAppRequest):
        from ..experiments.common import _to_json

        result = self.session._cache().get(self._cell_key(req))
        return None if result is None else _to_json(result)

    def _run_batch_blocking(self, cells: list[tuple]) -> dict:
        """Execute one batch of unique cells as one supervised sweep."""
        from ..experiments.common import _to_json

        report = self.session.sweep(cells=list(cells))
        self._count("executed_cells", report.computed)
        self._count("batches")
        cache = self.session._cache()
        out = {}
        for cell in cells:
            app, scheme, spec, scale = cell
            key = cache.key(app, scheme, spec, scale,
                            signature=self.options.signature())
            result = cache.get(key)
            out[cell] = None if result is None else _to_json(result)
        return out

    async def _run_batch(self, cells: list[tuple]) -> dict:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._pool,
                                          self._run_batch_blocking, cells)

    def _request_cache(self):
        """Persistent response store for compile/analyze/catt requests.

        Lives beside the result shards (``<cache>/service/``), so analysis
        survives server restarts exactly like simulation cells.  Memory-only
        sessions get a plain dict (process-local).
        """
        if self._request_store is None:
            from ..experiments.store import ShardStore

            cache = self.session._cache()
            if cache._store is not None:
                self._request_store = ShardStore(cache.path / "service",
                                                 version=1)
            else:
                self._request_store = {}
        return self._request_store

    def _request_cache_get(self, key: str):
        store = self._request_cache()
        return store.get(key)

    def _compute_and_store(self, req, key: str):
        from .handlers import execute_request

        resp = execute_request(self.session, req)
        store = self._request_cache()
        record = {"kind": resp.KIND, "payload": resp.to_payload()}
        if isinstance(store, dict):
            store[key] = record
        else:
            store.put(key, record)
        return resp

    def _decode_cached(self, req, record: dict):
        from .protocol import RESPONSES

        cls = RESPONSES.get(record.get("kind")) if isinstance(record, dict) \
            else None
        if cls is None or record.get("kind") != req.KIND:
            raise ServiceError("internal",
                               f"request cache held a mismatched record for "
                               f"{req.KIND!r}")
        return cls.from_payload(record.get("payload") or {})

    # -- introspection --------------------------------------------------------
    def service_stats(self) -> dict:
        stats = dict(self.stats)
        stats["inflight"] = self._inflight
        stats["draining"] = self._draining
        stats["batched_cells"] = self._batcher.batched_cells
        return stats

    def build_manifest(self):
        """Signed manifest describing this server's configuration."""
        from ..obs.manifest import build_manifest

        return build_manifest(
            command="serve",
            config={"spec": self.session.spec_name, **self.options.summary()},
        )


# ---------------------------------------------------------------------------
# ``catt serve`` entry point
# ---------------------------------------------------------------------------


async def _amain(server: CattServer) -> int:
    await server.start()
    loop = asyncio.get_running_loop()
    server.install_signal_handlers(loop)
    print("catt service listening on " + ", ".join(server.endpoints),
          file=sys.stderr, flush=True)
    try:
        await server.serve_until_drained()
    finally:
        await server.aclose()
    print("catt service drained cleanly", file=sys.stderr, flush=True)
    return 0


def serve(options: SimOptions, *, spec: str = "max",
          socket_path: str | None = None, host: str | None = None,
          port: int | None = None, batch_window: float = 0.02,
          max_pending: int = 128) -> int:
    """Blocking server loop for the CLI; returns the process exit code."""
    server = CattServer(spec, options, socket_path=socket_path, host=host,
                        port=port, batch_window=batch_window,
                        max_pending=max_pending)
    try:
        return asyncio.run(_amain(server))
    except KeyboardInterrupt:  # pragma: no cover - signal handler races
        return 130
