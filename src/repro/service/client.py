"""Blocking typed client for the CATT service.

:class:`ServiceClient` speaks the newline-delimited JSON protocol of
:mod:`repro.service.protocol` over a unix socket or TCP connection and
returns the **same typed Response objects** an in-process
:meth:`repro.Session.request` returns — swapping local for remote execution
is a one-line change::

    backend = Session("max", opts)                    # in-process
    backend = ServiceClient(socket_path="catt.sock")  # remote, same API
    resp = backend.request(RunAppRequest("ATAX", "catt", scale="test"))

Beyond the shared ``request`` API the client adds service-only affordances:

* :meth:`request_many` pipelines a batch of requests on one connection —
  the transport that lets the server coalesce and batch them into one
  supervised sweep;
* :meth:`last_meta` exposes the server's per-response metadata
  (``cache_hit``, ``coalesced``, ``manifest_signature``, ``key``);
* ping/stats/manifest/shutdown control requests.

The client is intentionally synchronous (one socket, one lock): the
concurrency lives server-side, where it can be shared between clients.
"""

from __future__ import annotations

import socket
import threading
import time
from pathlib import Path

from .protocol import (
    AnalyzeRequest,
    CattRequest,
    CompileRequest,
    ManifestRequest,
    PingRequest,
    RunAppRequest,
    ServiceError,
    ShutdownRequest,
    StatsRequest,
    decode_response,
    dump_frame,
    encode_request,
    load_frame,
)


class ServiceClient:
    """One connection to a ``catt serve`` process, with a typed API."""

    def __init__(self, socket_path: str | Path | None = None,
                 host: str | None = None, port: int | None = None,
                 *, timeout: float = 600.0, deadline_s: float | None = None):
        if socket_path is None and port is None:
            raise ValueError(
                "ServiceClient needs a unix socket_path or a TCP host/port")
        self.socket_path = Path(socket_path) if socket_path else None
        self.host = host or "127.0.0.1"
        self.port = port
        self.timeout = timeout          # socket-level I/O timeout
        self.deadline_s = deadline_s    # default per-request server deadline
        self.last_meta: dict = {}       # meta of the most recent response
        self._sock: socket.socket | None = None
        self._rfile = None
        self._lock = threading.Lock()
        self._next_id = 0

    # -- connection management ------------------------------------------------
    def _connect(self) -> None:
        if self._sock is not None:
            return
        if self.socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(str(self.socket_path))
        else:
            sock = socket.create_connection((self.host, self.port),
                                            timeout=self.timeout)
        self._sock = sock
        self._rfile = sock.makefile("rb")

    def close(self) -> None:
        if self._rfile is not None:
            try:
                self._rfile.close()
            except OSError:
                pass
            self._rfile = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def wait_until_ready(self, timeout: float = 10.0,
                         interval: float = 0.05) -> None:
        """Block until the server answers a ping (startup synchronization)."""
        deadline = time.monotonic() + timeout
        last_exc: Exception | None = None
        while time.monotonic() < deadline:
            try:
                self.ping()
                return
            except (OSError, ServiceError) as exc:
                last_exc = exc
                self.close()
                time.sleep(interval)
        raise TimeoutError(
            f"catt service did not become ready within {timeout}s"
            + (f" (last error: {last_exc})" if last_exc else ""))

    # -- wire plumbing --------------------------------------------------------
    def _send(self, req, deadline_s: float | None) -> int:
        self._next_id += 1
        rid = self._next_id
        frame = encode_request(
            req, rid,
            deadline_s if deadline_s is not None else self.deadline_s)
        self._sock.sendall(dump_frame(frame))
        return rid

    def _recv(self) -> tuple:
        line = self._rfile.readline()
        if not line:
            raise ServiceError("internal",
                               "connection closed by the service")
        return decode_response(load_frame(line))

    def request(self, req, deadline_s: float | None = None):
        """Execute one typed request remotely; returns the typed Response.

        Raises :class:`ServiceError` (carrying the wire error code) when the
        server reports a failure.  ``deadline_s`` overrides the client's
        default per-request deadline for this call.
        """
        with self._lock:
            self._connect()
            rid = self._send(req, deadline_s)
            got, resp, meta = self._recv()
            if got != rid:
                raise ServiceError(
                    "internal",
                    f"response id {got!r} does not match request id {rid}")
            self.last_meta = meta
            if isinstance(resp, ServiceError):
                raise resp
            return resp

    def request_many(self, reqs, deadline_s: float | None = None) -> list:
        """Pipeline ``reqs`` on one connection; responses in request order.

        All requests are written before any response is read, so the server
        sees them concurrently — identical requests coalesce and run_app
        cells batch into one supervised sweep.  Each result is either the
        typed Response or the :class:`ServiceError` the server returned for
        it (errors are *returned*, not raised, so one failing cell cannot
        hide the rest of the batch).  ``last_meta`` maps request index →
        meta after this call.
        """
        reqs = list(reqs)
        with self._lock:
            self._connect()
            ids = [self._send(req, deadline_s) for req in reqs]
            index_of = {rid: i for i, rid in enumerate(ids)}
            out: list = [None] * len(reqs)
            metas: dict[int, dict] = {}
            for _ in reqs:
                rid, resp, meta = self._recv()
                i = index_of.get(rid)
                if i is None:
                    raise ServiceError("internal",
                                       f"unexpected response id {rid!r}")
                out[i] = resp
                metas[i] = meta
            self.last_meta = metas
            return out

    # -- typed compute helpers (the Session-equivalent surface) ---------------
    def compile(self, source: str):
        return self.request(CompileRequest(source))

    def analyze(self, source: str, kernel: str, block: int, grid=None):
        return self.request(AnalyzeRequest(source, kernel, block, grid))

    def catt(self, source: str, launches=()):
        return self.request(CattRequest(source, launches))

    def run_app(self, app: str, scheme: str, spec: str = "max",
                scale: str = "bench", verify: bool = False):
        return self.request(RunAppRequest(app, scheme, spec, scale, verify))

    def sweep(self, cells, deadline_s: float | None = None) -> list:
        """Run ``cells`` (``(app, scheme, spec, scale)`` tuples) pipelined.

        Returns one :class:`~repro.service.protocol.RunAppResponse` (or
        ServiceError) per cell, in cell order; the server executes the
        uncached cells as one batched sweep across its worker processes.
        """
        return self.request_many(
            [RunAppRequest(app, scheme, spec, scale)
             for app, scheme, spec, scale in cells],
            deadline_s=deadline_s)

    # -- control helpers ------------------------------------------------------
    def ping(self):
        return self.request(PingRequest())

    def stats(self):
        return self.request(StatsRequest())

    def manifest(self):
        return self.request(ManifestRequest())

    def shutdown(self):
        """Ask the server to drain gracefully (same path as SIGTERM)."""
        return self.request(ShutdownRequest())
