"""CATT-as-a-service: a request-level service layer over the pipeline.

The paper's analyze → throttle-search → simulate pipeline is expensive but
fully deterministic per (kernel-source, configuration), so hot kernels
should be analyzed *once ever*.  This package turns the in-process
:class:`repro.Session` into a long-lived server sharing one crash-safe
sharded result store across every client, process, and run:

* :mod:`repro.service.protocol` — the typed request/response dataclasses
  and the newline-delimited JSON wire format.  Both :class:`repro.Session`
  (in-process) and :class:`ServiceClient` (remote) speak exactly these
  types, so local-vs-remote is a one-line swap.
* :mod:`repro.service.handlers` — executes one typed request against a
  Session; the single implementation behind both transports.
* :mod:`repro.service.batcher` — request coalescing (concurrent identical
  requests share one in-flight computation) and sweep batching (run_app
  cells collected within a window execute as ONE supervisor-backed sweep).
* :mod:`repro.service.server` — the asyncio server behind ``catt serve``
  (unix socket and/or TCP) with backpressure, per-request deadlines, and
  graceful drain on SIGTERM.
* :mod:`repro.service.client` — the blocking :class:`ServiceClient`.

See docs/SERVICE.md for the protocol, deployment notes, and failure modes.
"""

from .client import ServiceClient
from .protocol import (
    AnalyzeRequest,
    AnalyzeResponse,
    CattRequest,
    CattResponse,
    CompileRequest,
    CompileResponse,
    RunAppRequest,
    RunAppResponse,
    ServiceError,
    request_key,
    request_manifest,
)

__all__ = [
    "ServiceClient",
    "ServiceError",
    "CompileRequest",
    "CompileResponse",
    "AnalyzeRequest",
    "AnalyzeResponse",
    "CattRequest",
    "CattResponse",
    "RunAppRequest",
    "RunAppResponse",
    "request_key",
    "request_manifest",
]
