"""Request coalescing and sweep batching for the service event loop.

Two complementary dedup layers sit between the wire and the compute thread:

:class:`Coalescer`
    Content-addressed in-flight dedup for compile/analyze/catt requests.
    The first request for a key becomes the *leader* and owns the
    computation; every identical request arriving before it completes
    attaches to the same future and receives the same result object.

:class:`SweepBatcher`
    run_app-specific: cells submitted within ``window`` seconds are
    collected, deduplicated, and executed as ONE call into the existing
    supervisor-backed sweep executor (:meth:`repro.Session.sweep`), so a
    pipelined client sweep — or several clients sweeping at once — fans out
    across the sweep's worker processes instead of serializing request by
    request.  A cell stays claimed from submission until its batch
    completes, so identical cells in later requests coalesce onto the
    in-flight batch rather than re-simulating.

Both classes are single-loop asyncio objects: all bookkeeping happens on
the event-loop thread; only the handed-in executor callables block.
"""

from __future__ import annotations

import asyncio


class Coalescer:
    """key → in-flight future; identical requests share one computation."""

    def __init__(self):
        self._inflight: dict[str, asyncio.Future] = {}

    def __len__(self) -> int:
        return len(self._inflight)

    def claim(self, key: str, start) -> tuple[asyncio.Future, bool]:
        """Join the in-flight computation for ``key``, or become its leader.

        ``start`` is a zero-argument callable returning an awaitable that
        performs the computation; it is invoked only for the leader.
        Returns ``(future, coalesced)`` — ``coalesced`` is True when this
        call attached to work another request already started.
        """
        fut = self._inflight.get(key)
        if fut is not None:
            return fut, True
        loop = asyncio.get_running_loop()
        fut = loop.create_future()
        self._inflight[key] = fut
        task = loop.create_task(self._lead(key, fut, start))
        # Keep a strong reference until the task resolves the future.
        fut._coalescer_task = task  # type: ignore[attr-defined]
        return fut, False

    async def _lead(self, key: str, fut: asyncio.Future, start) -> None:
        try:
            result = await start()
        except BaseException as exc:  # noqa: BLE001 - delivered to waiters
            if not fut.done():
                fut.set_exception(exc)
        else:
            if not fut.done():
                fut.set_result(result)
        finally:
            self._inflight.pop(key, None)


class SweepBatcher:
    """Collect run_app cells briefly, then execute them as one sweep.

    ``execute_batch`` is an async callable taking a list of cells and
    returning ``{cell: result}``; it is invoked once per flushed batch.
    """

    def __init__(self, execute_batch, window: float = 0.02):
        if window < 0:
            raise ValueError(f"window must be >= 0, got {window}")
        self._execute = execute_batch
        self.window = window
        #: Every cell currently claimed — awaiting flush OR executing.
        self._claimed: dict[tuple, asyncio.Future] = {}
        self._batch: list[tuple] = []
        self._flush_task: asyncio.Task | None = None
        self.batches = 0          # batches flushed
        self.batched_cells = 0    # unique cells executed through batches

    def __len__(self) -> int:
        return len(self._claimed)

    def submit(self, cell: tuple) -> tuple[asyncio.Future, bool]:
        """Claim ``cell``; returns ``(future, coalesced)``.

        The future resolves with the cell's result record once its batch's
        sweep completes.  ``coalesced`` is True when an identical cell was
        already claimed (pending or executing).
        """
        fut = self._claimed.get(cell)
        if fut is not None:
            return fut, True
        loop = asyncio.get_running_loop()
        fut = loop.create_future()
        self._claimed[cell] = fut
        self._batch.append(cell)
        if self._flush_task is None or self._flush_task.done():
            self._flush_task = loop.create_task(self._flush_after())
        return fut, False

    async def _flush_after(self) -> None:
        if self.window:
            await asyncio.sleep(self.window)
        self._flush_task = None
        batch, self._batch = self._batch, []
        if not batch:
            return
        self.batches += 1
        self.batched_cells += len(batch)
        try:
            results = await self._execute(batch)
        except BaseException as exc:  # noqa: BLE001 - delivered to waiters
            for cell in batch:
                fut = self._claimed.pop(cell, None)
                if fut is not None and not fut.done():
                    fut.set_exception(exc)
        else:
            for cell in batch:
                fut = self._claimed.pop(cell, None)
                if fut is not None and not fut.done():
                    fut.set_result(results.get(cell))

    async def join(self) -> None:
        """Wait until every claimed cell has resolved (drain support)."""
        while self._claimed or (self._flush_task is not None
                                and not self._flush_task.done()):
            pending = [f for f in self._claimed.values() if not f.done()]
            if self._flush_task is not None and not self._flush_task.done():
                pending.append(self._flush_task)
            if not pending:
                return
            await asyncio.wait(pending)
