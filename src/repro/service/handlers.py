"""Execute one typed request against a :class:`repro.Session`.

This is the single implementation behind both transports:
``Session.request(req)`` calls :func:`execute_request` directly, and the
server's compute thread calls it for every request a client sends.  Keeping
one code path is what makes a remote response byte-identical to a local
one — there is nothing the server computes that a Session does not.
"""

from __future__ import annotations

from .protocol import (
    AnalyzeRequest,
    AnalyzeResponse,
    CattRequest,
    CattResponse,
    CompileRequest,
    CompileResponse,
    RunAppRequest,
    RunAppResponse,
    ServiceError,
    source_sha256,
)


def execute_request(session, req):
    """Run ``req`` on ``session``; returns the matching typed Response."""
    if isinstance(req, CompileRequest):
        unit = session.compile(req.source)
        return CompileResponse(
            kernels=tuple(k.name for k in unit.kernels()),
            source_sha256=source_sha256(req.source),
        )
    if isinstance(req, AnalyzeRequest):
        from ..analysis import format_analysis
        from ..analysis.report import analysis_summary

        unit = session.compile(req.source)
        analysis = session.analyze(unit, req.kernel, req.block, grid=req.grid)
        return AnalyzeResponse(summary=analysis_summary(analysis),
                               report=format_analysis(analysis))
    if isinstance(req, CattRequest):
        from ..frontend import emit

        unit = session.compile(req.source)
        comp = session.catt(unit, req.launch_dict())
        return CattResponse(
            source=emit(comp.unit),
            kernels=tuple(sorted(comp.transforms)),
            diagnostics=tuple(d.to_dict() for d in comp.diagnostics),
        )
    if isinstance(req, RunAppRequest):
        from ..experiments.common import ResultCache, _to_json

        result = session.run_app(req.app, req.scheme, scale=req.scale,
                                 verify=req.verify, spec=req.spec)
        key = ResultCache.key(req.app, req.scheme, req.spec, req.scale,
                              signature=session.options.signature())
        return RunAppResponse(result=_to_json(result), key=key)
    raise ServiceError(
        "unsupported",
        f"{type(req).__name__} is not an in-process compute request")
