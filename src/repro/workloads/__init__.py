"""The Table-2 benchmark suite, rewritten in the CUDA subset and scaled for
single-SM simulation (DESIGN.md §2)."""

from .base import Launch, Workload, WorkloadRun, run_workload
from .microbench import microbench_source, run_microbench
from .registry import CI_GROUP, CS_GROUP, WORKLOADS, get_workload, table2_rows

__all__ = [
    "Launch",
    "Workload",
    "WorkloadRun",
    "run_workload",
    "microbench_source",
    "run_microbench",
    "CI_GROUP",
    "CS_GROUP",
    "WORKLOADS",
    "get_workload",
    "table2_rows",
]
