"""Figure-3 microbenchmarks: ``L1D-full-with-K-warps``.

A fixed workload — 32 warps, each repeatedly sweeping a private region of
``SPAN = L1D_lines / K`` cache lines — run at different TLP levels.  TLP is
limited exactly the way CATT limits it (warp-group splitting, Fig. 4), so
the total work is constant across the curve and only the *concurrency*
varies: ``K`` concurrent warps fill the L1D; more thrash it; fewer
under-utilize the SM (§3.3's trade-off).
"""

from __future__ import annotations

import numpy as np

from ..frontend import parse
from ..runtime import Device
from ..sim.arch import TITAN_V_SIM, GPUSpec
from ..transform import force_throttle

TOTAL_WARPS = 32


def microbench_source(span_lines: int, iters: int,
                      total_warps: int = TOTAL_WARPS) -> str:
    return f"""
#define SPAN {span_lines}
#define ITERS {iters}

__global__ void microbench(float *data, float *out) {{
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    int warp = tid / 32;
    int lane = tid % 32;
    float acc = 0.0f;
    for (int t = 0; t < ITERS; t++) {{
        for (int s = 0; s < SPAN; s++) {{
            acc += data[(warp * SPAN + s) * 32 + lane];
        }}
    }}
    out[tid] = acc;
}}
"""


def run_microbench(
    fill_warps: int,
    tlp_warps: int,
    spec: GPUSpec = TITAN_V_SIM,
    iters: int = 2,
    l1d_lines: int | None = None,
    total_warps: int = TOTAL_WARPS,
) -> int:
    """Cycles for the fixed 32-warp microbenchmark throttled to ``tlp_warps``
    concurrent warps, with per-warp footprint sized so ``fill_warps`` warps
    fill the L1D."""
    if total_warps % tlp_warps != 0:
        raise ValueError(f"TLP {tlp_warps} must divide {total_warps} warps")
    if l1d_lines is None:
        l1d_lines = spec.l1d_bytes_for_carveout(0) // spec.cache_line
    span = max(l1d_lines // fill_warps, 1)
    nthreads = total_warps * spec.warp_size
    unit = parse(microbench_source(span, iters, total_warps))
    n = total_warps // tlp_warps
    if n > 1:
        unit = force_throttle(unit, "microbench", nthreads, spec, n, 0, grid=1)
    dev = Device(spec)
    data_host = np.arange(total_warps * span * 32, dtype=np.float32)
    data = dev.to_device(data_host)
    out = dev.zeros(nthreads)
    res = dev.launch(unit, "microbench", grid=1, block=nthreads,
                     args=[data, out])
    expected = (
        data_host.reshape(total_warps, span, 32).sum(axis=1) * iters
    ).reshape(-1)
    np.testing.assert_allclose(out.to_host(), expected, rtol=1e-3)
    return res.cycles
