"""CORR — correlation computation (Polybench/GPU).

The paper's *unresolvable* case: the correlation kernel's outer loop re-uses
``data[i*M+j1]`` across ``j2`` iterations, but realizing that reuse would
require caching an entire inner column sweep per thread — beyond the L1D at
any TLP.  CATT must detect this and leave the kernel untouched ("CORR ...
CATT passes such cases without optimization", §5.1).

Four kernels as in Table 3: mean, std, normalize ("reduce"), corr — only the
last contains the problematic loop nest.
"""

from __future__ import annotations

import numpy as np

from ..base import Launch, Workload


class Corr(Workload):
    name = "CORR"
    group = "CS"
    description = "Correlation computation"
    paper_input = "2K x 2K"
    smem_kb = 0.0

    def _configure(self) -> None:
        if self.scale == "bench":
            # Few threads, deep inner sweep: even ONE warp's per-j2 footprint
            # (2 x 128 data lines + symmat) exceeds a 32 KB L1D, so the
            # contention is unresolvable at any TLP — the paper's CORR case.
            self.m, self.n = 64, 128     # variables (threads), observations
        else:
            self.m, self.n = 64, 16

    def source(self) -> str:
        return f"""
#define M {self.m}
#define N {self.n}
#define EPS 0.005f

__global__ void corr_mean(float *data, float *mean) {{
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    if (j < M) {{
        float s = 0.0f;
        for (int i = 0; i < N; i++) {{
            s += data[i * M + j];
        }}
        mean[j] = s / N;
    }}
}}

__global__ void corr_std(float *data, float *mean, float *stddev) {{
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    if (j < M) {{
        float s = 0.0f;
        for (int i = 0; i < N; i++) {{
            float d = data[i * M + j] - mean[j];
            s += d * d;
        }}
        s = sqrtf(s / N);
        if (s <= EPS) {{
            s = 1.0f;
        }}
        stddev[j] = s;
    }}
}}

__global__ void corr_normalize(float *data, float *mean, float *stddev) {{
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    if (j < M) {{
        for (int i = 0; i < N; i++) {{
            data[i * M + j] = (data[i * M + j] - mean[j]) / (sqrtf((float)N) * stddev[j]);
        }}
    }}
}}

__global__ void corr_kernel(float *data, float *symmat) {{
    int j1 = blockIdx.x * blockDim.x + threadIdx.x;
    if (j1 < M - 1) {{
        symmat[j1 * M + j1] = 1.0f;
        for (int j2 = j1 + 1; j2 < M; j2++) {{
            float sum = 0.0f;
            for (int i = 0; i < N; i++) {{
                sum += data[i * M + j1] * data[i * M + j2];
            }}
            symmat[j1 * M + j2] = sum;
            symmat[j2 * M + j1] = sum;
        }}
    }}
}}
"""

    def launches(self) -> list[Launch]:
        block = min(self.m, 128)
        grid = -(-self.m // block)
        return [
            Launch("corr_mean", grid, block, ("data", "mean")),
            Launch("corr_std", grid, block, ("data", "mean", "stddev")),
            Launch("corr_normalize", grid, block, ("data", "mean", "stddev")),
            Launch("corr_kernel", grid, block, ("data", "symmat")),
        ]

    def setup(self, dev):
        self.data = self.rng.standard_normal((self.n, self.m)).astype(np.float32)
        return {
            "data": dev.to_device(self.data),
            "mean": dev.zeros(self.m),
            "stddev": dev.zeros(self.m),
            "symmat": dev.zeros((self.m, self.m)),
        }

    def verify(self, buffers) -> None:
        d = self.data.astype(np.float64)
        mean = d.mean(axis=0)
        std = np.sqrt(((d - mean) ** 2).mean(axis=0))
        std[std <= 0.005] = 1.0
        norm = (d - mean) / (np.sqrt(self.n) * std)
        ref = norm.T @ norm
        np.fill_diagonal(ref, 1.0)
        ref[-1, -1] = 1.0
        got = buffers["symmat"].to_host()
        # The last variable's row is only written via symmetry.
        np.testing.assert_allclose(got[:-1, :-1], ref[:-1, :-1],
                                   rtol=5e-3, atol=5e-3)
