"""GEMM — matrix multiply (Polybench/GPU), cache-insensitive group.

Naive 2-D kernel: ``A[i*K+k]`` is warp-uniform and ``B[k*N+j]`` coalesced, so
the per-loop footprint is tiny; CATT must keep the baseline TLP (Fig. 8).
"""

from __future__ import annotations

import numpy as np

from ..base import Launch, Workload


class Gemm(Workload):
    name = "GEMM"
    group = "CI"
    description = "Matrix multiply"
    paper_input = "0.5K x 0.5K"
    smem_kb = 0.0

    ALPHA = 1.0
    BETA = 0.5

    def _configure(self) -> None:
        if self.scale == "bench":
            self.ni, self.nj, self.nk = 32, 64, 96
        else:
            self.ni, self.nj, self.nk = 16, 32, 24

    def source(self) -> str:
        return f"""
#define NI {self.ni}
#define NJ {self.nj}
#define NK {self.nk}
#define ALPHA {self.ALPHA}f
#define BETA {self.BETA}f

__global__ void gemm_kernel(float *a, float *b, float *c) {{
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    int i = blockIdx.y * blockDim.y + threadIdx.y;
    if (i < NI && j < NJ) {{
        c[i * NJ + j] *= BETA;
        for (int k = 0; k < NK; k++) {{
            c[i * NJ + j] += ALPHA * a[i * NK + k] * b[k * NJ + j];
        }}
    }}
}}
"""

    def launches(self) -> list[Launch]:
        grid = (-(-self.nj // 32), -(-self.ni // 8))
        return [Launch("gemm_kernel", grid, (32, 8), ("a", "b", "c"))]

    def setup(self, dev):
        self.a = self.rng.standard_normal((self.ni, self.nk)).astype(np.float32)
        self.b = self.rng.standard_normal((self.nk, self.nj)).astype(np.float32)
        self.c0 = self.rng.standard_normal((self.ni, self.nj)).astype(np.float32)
        return {
            "a": dev.to_device(self.a),
            "b": dev.to_device(self.b),
            "c": dev.to_device(self.c0),
        }

    def verify(self, buffers) -> None:
        ref = self.BETA * self.c0 + self.ALPHA * (self.a @ self.b)
        np.testing.assert_allclose(
            buffers["c"].to_host(), ref, rtol=2e-3, atol=1e-3
        )
