"""ATAX — matrix transpose and vector multiplication (Polybench/GPU).

The paper's flagship example (Figs. 1/4/5, §3.1): kernel 1 walks matrix rows
(``A[i*NY+j]`` — inter-thread distance NY, fully divergent, heavy L1D
contention) while kernel 2 walks columns (coalesced, no contention).  CATT
throttles kernel 1 only; BFTT's single app-wide TLP hurts kernel 2 (§5.1).

Paper input: 40K×40K.  Simulation scale: 1024×256 (same footprint/L1D regime
on the single simulated SM — see DESIGN.md §2).
"""

from __future__ import annotations

import numpy as np

from ..base import Launch, Workload


class Atax(Workload):
    name = "ATAX"
    group = "CS"
    description = "Matrix transpose and vector mul."
    paper_input = "40K x 40K"
    smem_kb = 0.0

    def _configure(self) -> None:
        if self.scale == "bench":
            self.nx, self.ny = 1024, 192
        else:
            self.nx, self.ny = 512, 48

    def source(self) -> str:
        return f"""
#define NX {self.nx}
#define NY {self.ny}

__global__ void atax_kernel1(float *A, float *x, float *tmp) {{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < NX) {{
        for (int j = 0; j < NY; j++) {{
            tmp[i] += A[i * NY + j] * x[j];
        }}
    }}
}}

__global__ void atax_kernel2(float *A, float *y, float *tmp) {{
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    if (j < NY) {{
        for (int i = 0; i < NX; i++) {{
            y[j] += A[i * NY + j] * tmp[i];
        }}
    }}
}}
"""

    def launches(self) -> list[Launch]:
        return [
            Launch("atax_kernel1", -(-self.nx // 256), 256, ("A", "x", "tmp")),
            Launch("atax_kernel2", -(-self.ny // 256), 256, ("A", "y", "tmp")),
        ]

    def setup(self, dev):
        self.A = self.rng.standard_normal((self.nx, self.ny)).astype(np.float32)
        self.x = self.rng.standard_normal(self.ny).astype(np.float32)
        return {
            "A": dev.to_device(self.A),
            "x": dev.to_device(self.x),
            "tmp": dev.zeros(self.nx),
            "y": dev.zeros(self.ny),
        }

    def verify(self, buffers) -> None:
        tmp_ref = self.A @ self.x
        y_ref = self.A.T @ tmp_ref
        np.testing.assert_allclose(
            buffers["tmp"].to_host(), tmp_ref, rtol=2e-3, atol=1e-3
        )
        np.testing.assert_allclose(
            buffers["y"].to_host(), y_ref, rtol=2e-2, atol=1e-2
        )
