"""3MM — three chained matrix multiplies (Polybench/GPU), CI group."""

from __future__ import annotations

import numpy as np

from ..base import Launch, Workload


class Mm3(Workload):
    name = "3MM"
    group = "CI"
    description = "3 matrix multiply"
    paper_input = "0.5K x 0.5K"
    smem_kb = 0.0

    def _configure(self) -> None:
        if self.scale == "bench":
            self.n = 48
        else:
            self.n = 16

    def source(self) -> str:
        return f"""
#define N {self.n}

__global__ void mm3_kernel1(float *a, float *b, float *e) {{
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    int i = blockIdx.y * blockDim.y + threadIdx.y;
    if (i < N && j < N) {{
        e[i * N + j] = 0.0f;
        for (int k = 0; k < N; k++) {{
            e[i * N + j] += a[i * N + k] * b[k * N + j];
        }}
    }}
}}

__global__ void mm3_kernel2(float *c, float *d, float *f) {{
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    int i = blockIdx.y * blockDim.y + threadIdx.y;
    if (i < N && j < N) {{
        f[i * N + j] = 0.0f;
        for (int k = 0; k < N; k++) {{
            f[i * N + j] += c[i * N + k] * d[k * N + j];
        }}
    }}
}}

__global__ void mm3_kernel3(float *e, float *f, float *g) {{
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    int i = blockIdx.y * blockDim.y + threadIdx.y;
    if (i < N && j < N) {{
        g[i * N + j] = 0.0f;
        for (int k = 0; k < N; k++) {{
            g[i * N + j] += e[i * N + k] * f[k * N + j];
        }}
    }}
}}
"""

    def launches(self) -> list[Launch]:
        grid = (-(-self.n // 32), -(-self.n // 8))
        return [
            Launch("mm3_kernel1", grid, (32, 8), ("a", "b", "e")),
            Launch("mm3_kernel2", grid, (32, 8), ("c", "d", "f")),
            Launch("mm3_kernel3", grid, (32, 8), ("e", "f", "g")),
        ]

    def setup(self, dev):
        n = self.n
        self.a = self.rng.standard_normal((n, n)).astype(np.float32)
        self.b = self.rng.standard_normal((n, n)).astype(np.float32)
        self.c = self.rng.standard_normal((n, n)).astype(np.float32)
        self.d = self.rng.standard_normal((n, n)).astype(np.float32)
        return {
            "a": dev.to_device(self.a),
            "b": dev.to_device(self.b),
            "c": dev.to_device(self.c),
            "d": dev.to_device(self.d),
            "e": dev.zeros((n, n)),
            "f": dev.zeros((n, n)),
            "g": dev.zeros((n, n)),
        }

    def verify(self, buffers) -> None:
        ref = (self.a @ self.b) @ (self.c @ self.d)
        np.testing.assert_allclose(
            buffers["g"].to_host(), ref, rtol=5e-3, atol=5e-2
        )
