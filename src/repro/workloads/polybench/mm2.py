"""2MM — two chained matrix multiplies (Polybench/GPU), CI group."""

from __future__ import annotations

import numpy as np

from ..base import Launch, Workload


class Mm2(Workload):
    name = "2MM"
    group = "CI"
    description = "2 matrix multiply"
    paper_input = "1K x 1K"
    smem_kb = 0.0

    def _configure(self) -> None:
        if self.scale == "bench":
            self.n, self.nk = 48, 64
        else:
            self.n, self.nk = 16, 24

    def source(self) -> str:
        return f"""
#define N {self.n}
#define NK {self.nk}

__global__ void mm2_kernel1(float *a, float *b, float *tmp) {{
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    int i = blockIdx.y * blockDim.y + threadIdx.y;
    if (i < N && j < N) {{
        tmp[i * N + j] = 0.0f;
        for (int k = 0; k < NK; k++) {{
            tmp[i * N + j] += a[i * NK + k] * b[k * N + j];
        }}
    }}
}}

__global__ void mm2_kernel2(float *tmp, float *c, float *d) {{
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    int i = blockIdx.y * blockDim.y + threadIdx.y;
    if (i < N && j < N) {{
        d[i * N + j] = 0.0f;
        for (int k = 0; k < N; k++) {{
            d[i * N + j] += tmp[i * N + k] * c[k * N + j];
        }}
    }}
}}
"""

    def launches(self) -> list[Launch]:
        grid = (-(-self.n // 32), -(-self.n // 8))
        return [
            Launch("mm2_kernel1", grid, (32, 8), ("a", "b", "tmp")),
            Launch("mm2_kernel2", grid, (32, 8), ("tmp", "c", "d")),
        ]

    def setup(self, dev):
        self.a = self.rng.standard_normal((self.n, self.nk)).astype(np.float32)
        self.b = self.rng.standard_normal((self.nk, self.n)).astype(np.float32)
        self.c = self.rng.standard_normal((self.n, self.n)).astype(np.float32)
        return {
            "a": dev.to_device(self.a),
            "b": dev.to_device(self.b),
            "c": dev.to_device(self.c),
            "tmp": dev.zeros((self.n, self.n)),
            "d": dev.zeros((self.n, self.n)),
        }

    def verify(self, buffers) -> None:
        ref = (self.a @ self.b) @ self.c
        np.testing.assert_allclose(
            buffers["d"].to_host(), ref, rtol=5e-3, atol=5e-3
        )
