"""SYR2K — symmetric rank-2k update (Polybench/GPU).

The paper's multidimensional-TB case (§4.2: "We examine every address
accessed by each thread in a warp ... (i.e., SYR2K)"): 2-D thread blocks,
with the ``b[j*M+k]``/``a[j*M+k]`` walks divergent across ``threadIdx.x``.
"""

from __future__ import annotations

import numpy as np

from ..base import Launch, Workload


class Syr2k(Workload):
    name = "SYR2K"
    group = "CS"
    description = "Symmetric rank-2k operations"
    paper_input = "2K x 2K"
    smem_kb = 0.0

    ALPHA = 1.2
    BETA = 0.8

    def _configure(self) -> None:
        if self.scale == "bench":
            self.ni, self.nj, self.nk = 32, 64, 96  # grid (2, 4) of (32, 8)
        else:
            self.ni, self.nj, self.nk = 16, 32, 32

    def source(self) -> str:
        return f"""
#define NI {self.ni}
#define NJ {self.nj}
#define NK {self.nk}
#define ALPHA {self.ALPHA}f
#define BETA {self.BETA}f

__global__ void syr2k_kernel(float *a, float *b, float *c) {{
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    int i = blockIdx.y * blockDim.y + threadIdx.y;
    if (i < NI && j < NJ) {{
        c[i * NJ + j] *= BETA;
        for (int k = 0; k < NK; k++) {{
            c[i * NJ + j] += ALPHA * a[i * NK + k] * b[j * NK + k];
            c[i * NJ + j] += ALPHA * b[i * NK + k] * a[j * NK + k];
        }}
    }}
}}
"""

    def launches(self) -> list[Launch]:
        grid = (-(-self.nj // 32), -(-self.ni // 8))
        return [Launch("syr2k_kernel", grid, (32, 8), ("a", "b", "c"))]

    def setup(self, dev):
        n = max(self.ni, self.nj)
        self.a = self.rng.standard_normal((n, self.nk)).astype(np.float32)
        self.b = self.rng.standard_normal((n, self.nk)).astype(np.float32)
        self.c0 = self.rng.standard_normal((self.ni, self.nj)).astype(np.float32)
        return {
            "a": dev.to_device(self.a),
            "b": dev.to_device(self.b),
            "c": dev.to_device(self.c0),
        }

    def verify(self, buffers) -> None:
        a, b = self.a, self.b
        ref = self.BETA * self.c0 + self.ALPHA * (
            a[: self.ni] @ b[: self.nj].T + b[: self.ni] @ a[: self.nj].T
        )
        np.testing.assert_allclose(
            buffers["c"].to_host(), ref, rtol=2e-3, atol=1e-3
        )
