"""GRAM — Gram-Schmidt orthonormalization step (Polybench/GPU), CI group.

One projection sweep: for a fixed pivot column ``k``, compute R[k,j] and
update the trailing columns.  All walks are column-coalesced.
"""

from __future__ import annotations

import numpy as np

from ..base import Launch, Workload


class GramSchmidt(Workload):
    name = "GRAM"
    group = "CI"
    description = "Gram-Schmidt process"
    paper_input = "2K x 2K"
    smem_kb = 0.0

    def _configure(self) -> None:
        if self.scale == "bench":
            self.rows, self.cols = 96, 256
        else:
            self.rows, self.cols = 24, 64
        self.k = 0  # pivot column

    def source(self) -> str:
        return f"""
#define ROWS {self.rows}
#define COLS {self.cols}
#define K {self.k}

__global__ void gram_rdot(float *a, float *r) {{
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    if (j < COLS && j > K) {{
        float dot = 0.0f;
        float nrm = 0.0f;
        for (int i = 0; i < ROWS; i++) {{
            dot += a[i * COLS + K] * a[i * COLS + j];
            nrm += a[i * COLS + K] * a[i * COLS + K];
        }}
        r[j] = dot / nrm;
    }}
}}

__global__ void gram_update(float *a, float *r) {{
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    if (j < COLS && j > K) {{
        int stride = COLS;
        float *pivot = a + K;
        int idx = j;
        for (int i = 0; i < ROWS; i++) {{
            a[idx] -= r[j] * pivot[0];
            idx += stride;
            pivot += stride;
        }}
    }}
}}
"""

    def launches(self) -> list[Launch]:
        grid = -(-self.cols // 256)
        return [
            Launch("gram_rdot", grid, 256, ("a", "r")),
            Launch("gram_update", grid, 256, ("a", "r")),
        ]

    def setup(self, dev):
        self.a = self.rng.standard_normal(
            (self.rows, self.cols)).astype(np.float32) + 0.1
        return {
            "a": dev.to_device(self.a),
            "r": dev.zeros(self.cols),
        }

    def verify(self, buffers) -> None:
        a = self.a.astype(np.float64)
        k = self.k
        nrm = (a[:, k] ** 2).sum()
        r = (a[:, k : k + 1].T @ a).ravel() / nrm
        expected = a.copy()
        expected[:, k + 1 :] -= np.outer(a[:, k], r[k + 1 :])
        np.testing.assert_allclose(
            buffers["a"].to_host()[:, k + 1 :], expected[:, k + 1 :],
            rtol=2e-3, atol=1e-3,
        )
