"""BICG — BiCGStab sub-kernels (Polybench/GPU).

Mirror image of ATAX: kernel 1 is the coalesced column product (``s = Aᵀr``),
kernel 2 the divergent row product (``q = Ap``).  Table 3: CATT keeps the
baseline TLP for #1 and throttles #2 — opposite ordering to ATAX, which is
what defeats a single app-wide BFTT choice.
"""

from __future__ import annotations

import numpy as np

from ..base import Launch, Workload


class Bicg(Workload):
    name = "BICG"
    group = "CS"
    description = "BiCGStab"
    paper_input = "40K x 40K"
    smem_kb = 0.0

    def _configure(self) -> None:
        if self.scale == "bench":
            self.nx, self.ny = 1024, 192   # rows, cols
        else:
            self.nx, self.ny = 512, 48

    def source(self) -> str:
        return f"""
#define NX {self.nx}
#define NY {self.ny}

__global__ void bicg_kernel1(float *A, float *r, float *s) {{
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    if (j < NY) {{
        for (int i = 0; i < NX; i++) {{
            s[j] += A[i * NY + j] * r[i];
        }}
    }}
}}

__global__ void bicg_kernel2(float *A, float *p, float *q) {{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < NX) {{
        for (int j = 0; j < NY; j++) {{
            q[i] += A[i * NY + j] * p[j];
        }}
    }}
}}
"""

    def launches(self) -> list[Launch]:
        return [
            Launch("bicg_kernel1", -(-self.ny // 256), 256, ("A", "r", "s")),
            Launch("bicg_kernel2", -(-self.nx // 256), 256, ("A", "p", "q")),
        ]

    def setup(self, dev):
        self.A = self.rng.standard_normal((self.nx, self.ny)).astype(np.float32)
        self.r = self.rng.standard_normal(self.nx).astype(np.float32)
        self.p = self.rng.standard_normal(self.ny).astype(np.float32)
        return {
            "A": dev.to_device(self.A),
            "r": dev.to_device(self.r),
            "p": dev.to_device(self.p),
            "s": dev.zeros(self.ny),
            "q": dev.zeros(self.nx),
        }

    def verify(self, buffers) -> None:
        np.testing.assert_allclose(
            buffers["s"].to_host(), self.A.T @ self.r, rtol=2e-2, atol=1e-2
        )
        np.testing.assert_allclose(
            buffers["q"].to_host(), self.A @ self.p, rtol=2e-3, atol=1e-3
        )
