"""GSMV (gesummv) — scalar, vector, matrix multiplication (Polybench/GPU).

One kernel with *two* divergent matrix walks in the same loop — uniform,
heavy contention throughout, so CATT and BFTT pick the same TLP (§5.1:
"GSMV ... have a uniform level of cache contention").
"""

from __future__ import annotations

import numpy as np

from ..base import Launch, Workload


class Gesummv(Workload):
    name = "GSMV"
    group = "CS"
    description = "Scalar, vector matrix multiplication"
    paper_input = "20K x 20K"
    smem_kb = 0.0

    ALPHA = 1.5
    BETA = 2.5

    def _configure(self) -> None:
        if self.scale == "bench":
            self.n, self.nc = 512, 192    # 2 TBs — the paper's (8,2) baseline
        else:
            self.n, self.nc = 512, 48

    def source(self) -> str:
        return f"""
#define N {self.n}
#define NC {self.nc}
#define ALPHA {self.ALPHA}f
#define BETA {self.BETA}f

__global__ void gesummv_kernel(float *A, float *B, float *x, float *tmp, float *y) {{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < N) {{
        for (int j = 0; j < NC; j++) {{
            tmp[i] += A[i * NC + j] * x[j];
            y[i] += B[i * NC + j] * x[j];
        }}
        y[i] = ALPHA * tmp[i] + BETA * y[i];
    }}
}}
"""

    def launches(self) -> list[Launch]:
        return [
            Launch("gesummv_kernel", -(-self.n // 256), 256,
                   ("A", "B", "x", "tmp", "y")),
        ]

    def setup(self, dev):
        self.A = self.rng.standard_normal((self.n, self.nc)).astype(np.float32)
        self.B = self.rng.standard_normal((self.n, self.nc)).astype(np.float32)
        self.x = self.rng.standard_normal(self.nc).astype(np.float32)
        return {
            "A": dev.to_device(self.A),
            "B": dev.to_device(self.B),
            "x": dev.to_device(self.x),
            "tmp": dev.zeros(self.n),
            "y": dev.zeros(self.n),
        }

    def verify(self, buffers) -> None:
        tmp = self.A @ self.x
        y = self.ALPHA * tmp + self.BETA * (self.B @ self.x)
        np.testing.assert_allclose(
            buffers["y"].to_host(), y, rtol=2e-3, atol=1e-3
        )
