"""SYRK — symmetric rank-k update (Polybench/GPU), CI group.

Uses the transposed operand layout (``at[k*N+j]``) so both inner-loop walks
are coalesced — the configuration in which SYRK behaves cache-insensitively
(Table 2 lists SYRK in the CI group, unlike its rank-2k sibling).
"""

from __future__ import annotations

import numpy as np

from ..base import Launch, Workload


class Syrk(Workload):
    name = "SYRK"
    group = "CI"
    description = "Symmetric rank-k operations"
    paper_input = "1K x 1K"
    smem_kb = 0.0

    ALPHA = 1.5
    BETA = 0.75

    def _configure(self) -> None:
        if self.scale == "bench":
            self.n, self.m = 64, 96
        else:
            self.n, self.m = 32, 24

    def source(self) -> str:
        return f"""
#define N {self.n}
#define M {self.m}
#define ALPHA {self.ALPHA}f
#define BETA {self.BETA}f

__global__ void syrk_kernel(float *a, float *at, float *c) {{
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    int i = blockIdx.y * blockDim.y + threadIdx.y;
    if (i < N && j < N) {{
        c[i * N + j] *= BETA;
        for (int k = 0; k < M; k++) {{
            c[i * N + j] += ALPHA * a[i * M + k] * at[k * N + j];
        }}
    }}
}}
"""

    def launches(self) -> list[Launch]:
        grid = (-(-self.n // 32), -(-self.n // 8))
        return [Launch("syrk_kernel", grid, (32, 8), ("a", "at", "c"))]

    def setup(self, dev):
        self.a = self.rng.standard_normal((self.n, self.m)).astype(np.float32)
        self.c0 = self.rng.standard_normal((self.n, self.n)).astype(np.float32)
        return {
            "a": dev.to_device(self.a),
            "at": dev.to_device(np.ascontiguousarray(self.a.T)),
            "c": dev.to_device(self.c0),
        }

    def verify(self, buffers) -> None:
        ref = self.BETA * self.c0 + self.ALPHA * (self.a @ self.a.T)
        np.testing.assert_allclose(
            buffers["c"].to_host(), ref, rtol=2e-3, atol=1e-3
        )
