"""Polybench/GPU workloads (Grauer-Gray et al.)."""
