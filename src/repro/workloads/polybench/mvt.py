"""MVT — matrix-vector product and transpose (Polybench/GPU).

Kernel 1 is the divergent row-major product (throttled by CATT), kernel 2
the coalesced transpose product (left at baseline TLP) — Table 3's MVT rows.
"""

from __future__ import annotations

import numpy as np

from ..base import Launch, Workload


class Mvt(Workload):
    name = "MVT"
    group = "CS"
    description = "Matrix vector product and transpose"
    paper_input = "40K x 40K"
    smem_kb = 0.0

    def _configure(self) -> None:
        if self.scale == "bench":
            self.nr, self.nc = 1024, 192
        else:
            self.nr, self.nc = 512, 48

    def source(self) -> str:
        return f"""
#define NR {self.nr}
#define NC {self.nc}

__global__ void mvt_kernel1(float *A, float *x1, float *y1) {{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < NR) {{
        for (int j = 0; j < NC; j++) {{
            x1[i] += A[i * NC + j] * y1[j];
        }}
    }}
}}

__global__ void mvt_kernel2(float *A, float *x2, float *y2) {{
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    if (j < NC) {{
        for (int i = 0; i < NR; i++) {{
            x2[j] += A[i * NC + j] * y2[i];
        }}
    }}
}}
"""

    def launches(self) -> list[Launch]:
        return [
            Launch("mvt_kernel1", -(-self.nr // 256), 256, ("A", "x1", "y1")),
            Launch("mvt_kernel2", -(-self.nc // 256), 256, ("A", "x2", "y2")),
        ]

    def setup(self, dev):
        self.A = self.rng.standard_normal((self.nr, self.nc)).astype(np.float32)
        self.y1 = self.rng.standard_normal(self.nc).astype(np.float32)
        self.y2 = self.rng.standard_normal(self.nr).astype(np.float32)
        return {
            "A": dev.to_device(self.A),
            "y1": dev.to_device(self.y1),
            "y2": dev.to_device(self.y2),
            "x1": dev.zeros(self.nr),
            "x2": dev.zeros(self.nc),
        }

    def verify(self, buffers) -> None:
        np.testing.assert_allclose(
            buffers["x1"].to_host(), self.A @ self.y1, rtol=2e-3, atol=1e-3
        )
        np.testing.assert_allclose(
            buffers["x2"].to_host(), self.A.T @ self.y2, rtol=2e-2, atol=1e-2
        )
