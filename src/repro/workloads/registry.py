"""Workload registry — the Table-2 suite by name and group."""

from __future__ import annotations

from .base import Workload
from .polybench.atax import Atax
from .polybench.bicg import Bicg
from .polybench.corr import Corr
from .polybench.gemm import Gemm
from .polybench.gesummv import Gesummv
from .polybench.gramschmidt import GramSchmidt
from .polybench.mm2 import Mm2
from .polybench.mm3 import Mm3
from .polybench.mvt import Mvt
from .polybench.syr2k import Syr2k
from .polybench.syrk import Syrk
from .rodinia.backprop import Backprop
from .rodinia.bfs import Bfs
from .rodinia.btree import BTree
from .rodinia.cfd import Cfd
from .rodinia.heartwall import HeartWall
from .rodinia.hotspot3d import Hotspot3D
from .rodinia.huffman import Huffman
from .rodinia.kmeans import Kmeans
from .rodinia.lavamd import LavaMD
from .rodinia.lud import Lud
from .rodinia.myocyte import Myocyte
from .rodinia.particlefilter import ParticleFilter

WORKLOADS: dict[str, type[Workload]] = {
    cls.name: cls
    for cls in (
        # CS group (Table 2, top)
        Gesummv, Syr2k, Atax, Bicg, Mvt, Corr, Bfs, Cfd, Kmeans, ParticleFilter,
        # CI group (Table 2, bottom)
        GramSchmidt, Syrk, BTree, Hotspot3D, LavaMD, Gemm, Mm2, Mm3,
        Backprop, Huffman, Lud, HeartWall, Myocyte,
    )
}

CS_GROUP = [n for n, c in WORKLOADS.items() if c.group == "CS"]
CI_GROUP = [n for n, c in WORKLOADS.items() if c.group == "CI"]


def get_workload(name: str, scale: str = "bench") -> Workload:
    try:
        cls = WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(WORKLOADS)}"
        ) from None
    return cls(scale=scale)


def table2_rows() -> list[dict]:
    """Regenerate Table 2 (workload description) from the registry."""
    rows = []
    for name, cls in WORKLOADS.items():
        rows.append({
            "abbr": name,
            "group": cls.group,
            "application": cls.description,
            "smem_kb": cls.smem_kb,
            "paper_input": cls.paper_input,
        })
    return rows
