"""Workload framework: the Table-2 benchmark suite runs through this.

A :class:`Workload` bundles a CUDA-subset source, launch configurations,
input construction, and a NumPy reference check.  ``run_workload`` executes
it on the simulator under any of the competing schemes (baseline source,
CATT-compiled source, BFTT-forced source) and returns per-kernel metrics.

Scaling: every workload supports ``scale="bench"`` (the experiment harness,
seconds per run) and ``scale="test"`` (unit tests, sub-second).  Sizes are
chosen so the footprint/L1D ratios land in the same regime as the paper's
full-size inputs (DESIGN.md §2).
"""

from __future__ import annotations

import abc
import zlib
from dataclasses import dataclass, field

import numpy as np

from ..frontend import TranslationUnit, parse
from ..runtime import Device, DeviceArray
from ..sim.arch import TITAN_V_SIM, GPUSpec
from ..sim.launch import LaunchResult
from ..testing.faults import check_fault

Dim = int | tuple[int, ...]


@dataclass(frozen=True)
class Launch:
    """One kernel launch: names in ``args`` index the workload's buffers."""

    kernel: str
    grid: Dim
    block: Dim
    args: tuple[str, ...]


@dataclass
class WorkloadRun:
    """Results of executing a workload once on the simulator."""

    workload: str
    results: list[LaunchResult] = field(default_factory=list)
    verified: bool | None = None

    @property
    def total_cycles(self) -> int:
        return sum(r.cycles for r in self.results)

    def cycles_by_kernel(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for r in self.results:
            out[r.kernel_name] = out.get(r.kernel_name, 0) + r.cycles
        return out

    def hit_rate_by_kernel(self) -> dict[str, float]:
        loads: dict[str, list[int]] = {}
        for r in self.results:
            acc = loads.setdefault(r.kernel_name, [0, 0])
            acc[0] += r.metrics.l1_load.hits
            acc[1] += r.metrics.l1_load.accesses
        return {k: (h / a if a else 0.0) for k, (h, a) in loads.items()}

    def l2_hit_rate_by_kernel(self) -> dict[str, float]:
        """Shared-L2 hit rate per kernel, over all timed SMs' accesses."""
        loads: dict[str, list[int]] = {}
        for r in self.results:
            acc = loads.setdefault(r.kernel_name, [0, 0])
            acc[0] += r.metrics.l2_load.hits
            acc[1] += r.metrics.l2_load.accesses
        return {k: (h / a if a else 0.0) for k, (h, a) in loads.items()}


class Workload(abc.ABC):
    """Base class for all benchmark applications."""

    name: str = "?"
    group: str = "CS"            # "CS" or "CI" (Table 2)
    description: str = ""
    paper_input: str = ""        # the paper's input column, for Table 2
    smem_kb: float = 0.0         # the paper's SMEM column, for Table 2

    def __init__(self, scale: str = "bench"):
        if scale not in ("bench", "test"):
            raise ValueError(f"unknown scale {scale!r}")
        self.scale = scale
        # zlib.crc32, not hash(): str hashing is randomized per process, so
        # data-dependent apps (BFS's graph) would get different inputs — and
        # different cycle counts — on every invocation.
        self.rng = np.random.default_rng(
            zlib.crc32(self.name.encode()) % (2**31))
        self._configure()

    # -- to implement ------------------------------------------------------
    @abc.abstractmethod
    def _configure(self) -> None:
        """Set size attributes for ``self.scale``."""

    @abc.abstractmethod
    def source(self) -> str:
        """CUDA-subset source of all kernels."""

    @abc.abstractmethod
    def launches(self) -> list[Launch]:
        """Kernel launches, in execution order."""

    @abc.abstractmethod
    def setup(self, dev: Device) -> dict[str, DeviceArray | int | float]:
        """Allocate inputs/outputs; keys are launch-arg names."""

    def verify(self, buffers: dict) -> None:
        """Assert device results match the NumPy reference (optional)."""

    # -- derived -------------------------------------------------------------
    def unit(self) -> TranslationUnit:
        check_fault("frontend", self.name)
        return parse(self.source())

    def launch_configs(self) -> dict[str, tuple[Dim, Dim]]:
        """kernel name -> (grid, block), first occurrence wins."""
        configs: dict[str, tuple[Dim, Dim]] = {}
        for l in self.launches():
            configs.setdefault(l.kernel, (l.grid, l.block))
        return configs

    def execute(
        self,
        dev: Device,
        unit: TranslationUnit,
        buffers: dict,
        **launch_kw,
    ) -> list[LaunchResult]:
        """Run all launches in order.  Iterative workloads override this."""
        results = []
        for l in self.launches():
            args = [buffers[a] for a in l.args]
            results.append(
                dev.launch(unit, l.kernel, l.grid, l.block, args, **launch_kw)
            )
        return results


def run_workload(
    workload: Workload,
    spec: GPUSpec = TITAN_V_SIM,
    unit: TranslationUnit | None = None,
    verify: bool = True,
    scheduler: str = "gto",
    **launch_kw,
) -> WorkloadRun:
    """Execute ``workload`` on a fresh simulated device.

    ``unit`` overrides the source (pass a CATT-compiled or BFTT-forced unit);
    it must contain kernels with the baseline names.
    """
    check_fault("sim", workload.name)
    dev = Device(spec, scheduler=scheduler)
    buffers = workload.setup(dev)
    if unit is None:
        unit = workload.unit()
    results = workload.execute(dev, unit, buffers, **launch_kw)
    run = WorkloadRun(workload.name, results)
    if verify:
        workload.verify(buffers)
        run.verified = True
    return run
