"""HP — Hotspot3D thermal stencil (Rodinia), CI group.

Each thread sweeps the z-dimension of a 7-point stencil; all accesses are
unit-stride across threads (coalesced), so there is nothing to throttle.
"""

from __future__ import annotations

import numpy as np

from ..base import Launch, Workload


class Hotspot3D(Workload):
    name = "HP"
    group = "CI"
    description = "Hotspot3D"
    paper_input = "512x8"
    smem_kb = 0.0

    CC, CW, CE, CN, CS_, CT, CB = 0.4, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1

    def _configure(self) -> None:
        if self.scale == "bench":
            self.nx, self.ny, self.nz = 32, 32, 24
        else:
            self.nx, self.ny, self.nz = 16, 16, 8

    def source(self) -> str:
        return f"""
#define NX {self.nx}
#define NY {self.ny}
#define NZ {self.nz}

__global__ void hotspot_kernel(float *tIn, float *tOut, float *power) {{
    int x = blockIdx.x * blockDim.x + threadIdx.x;
    int y = blockIdx.y * blockDim.y + threadIdx.y;
    int xy = NX * NY;
    if (x < NX && y < NY) {{
        int c = x + y * NX;
        for (int z = 0; z < NZ; z++) {{
            int w = x == 0 ? c : c - 1;
            int e = x == NX - 1 ? c : c + 1;
            int n = y == 0 ? c : c - NX;
            int s = y == NY - 1 ? c : c + NX;
            int b = z == 0 ? c : c - xy;
            int t = z == NZ - 1 ? c : c + xy;
            tOut[c] = {self.CC}f * tIn[c] + {self.CW}f * tIn[w]
                + {self.CE}f * tIn[e] + {self.CN}f * tIn[n]
                + {self.CS_}f * tIn[s] + {self.CT}f * tIn[t]
                + {self.CB}f * tIn[b] + power[c];
            c += xy;
        }}
    }}
}}
"""

    def launches(self) -> list[Launch]:
        grid = (-(-self.nx // 32), -(-self.ny // 8))
        return [Launch("hotspot_kernel", grid, (32, 8),
                       ("tIn", "tOut", "power"))]

    def setup(self, dev):
        shape = (self.nz, self.ny, self.nx)
        self.tIn = self.rng.uniform(320, 340, shape).astype(np.float32)
        self.power = self.rng.uniform(0, 0.5, shape).astype(np.float32)
        return {
            "tIn": dev.to_device(self.tIn),
            "tOut": dev.zeros(shape),
            "power": dev.to_device(self.power),
        }

    def verify(self, buffers) -> None:
        t = self.tIn.astype(np.float64)
        w = np.concatenate([t[:, :, :1], t[:, :, :-1]], axis=2)
        e = np.concatenate([t[:, :, 1:], t[:, :, -1:]], axis=2)
        n = np.concatenate([t[:, :1, :], t[:, :-1, :]], axis=1)
        s = np.concatenate([t[:, 1:, :], t[:, -1:, :]], axis=1)
        b = np.concatenate([t[:1], t[:-1]], axis=0)
        tt = np.concatenate([t[1:], t[-1:]], axis=0)
        ref = (self.CC * t + self.CW * w + self.CE * e + self.CN * n
               + self.CS_ * s + self.CT * tt + self.CB * b + self.power)
        np.testing.assert_allclose(
            buffers["tOut"].to_host(), ref, rtol=1e-4, atol=1e-3
        )
