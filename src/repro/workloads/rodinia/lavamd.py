"""LVMD — LavaMD particle interactions (Rodinia), CI group, simplified.

Each TB loads its home-box particles into shared memory (Table 2: 7.03 KB)
and every thread accumulates pairwise interactions against them — off-chip
traffic is one coalesced sweep, the inner loop runs from shared memory.
"""

from __future__ import annotations

import numpy as np

from ..base import Launch, Workload

PAR = 128  # particles per box (= threads per TB)


class LavaMD(Workload):
    name = "LVMD"
    group = "CI"
    description = "LavaMD"
    paper_input = "boxes1d 10"
    smem_kb = 7.03

    A2 = 0.5

    def _configure(self) -> None:
        self.nboxes = 4 if self.scale == "bench" else 2

    def source(self) -> str:
        return f"""
#define PAR {PAR}
#define A2 {self.A2}f

__global__ void lavamd_kernel(float *rv, float *qv, float *fv) {{
    int bx = blockIdx.x;
    int tx = threadIdx.x;
    __shared__ float rA[PAR];
    __shared__ float qA[PAR];
    int gid = bx * PAR + tx;
    rA[tx] = rv[gid];
    qA[tx] = qv[gid];
    __syncthreads();
    float r = rA[tx];
    float force = 0.0f;
    for (int j = 0; j < PAR; j++) {{
        float d = r - rA[j];
        float u2 = A2 * d * d;
        float vij = expf(-u2);
        force += qA[j] * vij * d;
    }}
    fv[gid] = force;
}}
"""

    def launches(self) -> list[Launch]:
        return [Launch("lavamd_kernel", self.nboxes, PAR, ("rv", "qv", "fv"))]

    def setup(self, dev):
        n = self.nboxes * PAR
        self.rv = self.rng.uniform(0, 2, n).astype(np.float32)
        self.qv = self.rng.uniform(-1, 1, n).astype(np.float32)
        return {
            "rv": dev.to_device(self.rv),
            "qv": dev.to_device(self.qv),
            "fv": dev.zeros(n),
        }

    def verify(self, buffers) -> None:
        r = self.rv.reshape(self.nboxes, PAR).astype(np.float64)
        q = self.qv.reshape(self.nboxes, PAR).astype(np.float64)
        d = r[:, :, None] - r[:, None, :]
        vij = np.exp(-self.A2 * d * d)
        ref = (q[:, None, :] * vij * d).sum(axis=2).reshape(-1)
        np.testing.assert_allclose(
            buffers["fv"].to_host(), ref, rtol=1e-3, atol=1e-3
        )
