"""BP — back propagation layer forward pass (Rodinia), CI group.

Uses a small ``__shared__`` tile like the original (Table 2: 1.06 KB SMEM),
exercising the carveout path of Eq. 4 while remaining cache-insensitive.
"""

from __future__ import annotations

import numpy as np

from ..base import Launch, Workload


class Backprop(Workload):
    name = "BP"
    group = "CI"
    description = "Back propagation"
    paper_input = "64K"
    smem_kb = 1.06

    HID = 16  # hidden units per block column

    def _configure(self) -> None:
        if self.scale == "bench":
            self.n_in = 4096
        else:
            self.n_in = 1024

    def source(self) -> str:
        return f"""
#define NIN {self.n_in}
#define HID {self.HID}

__global__ void bpnn_layerforward(float *input, float *weights, float *partial) {{
    int by = blockIdx.x;
    int tx = threadIdx.x;
    int ty = threadIdx.y;
    __shared__ float input_node[16];
    __shared__ float weight_matrix[16][16];
    int index_in = HID * by + ty + 1;
    if (tx == 0) {{
        input_node[ty] = input[index_in];
    }}
    __syncthreads();
    weight_matrix[ty][tx] = weights[(index_in - 1) * HID + tx];
    __syncthreads();
    weight_matrix[ty][tx] = weight_matrix[ty][tx] * input_node[ty];
    __syncthreads();
    for (int i = 1; i <= 4; i++) {{
        int power_two = 1 << i;
        if (ty % power_two == 0) {{
            weight_matrix[ty][tx] = weight_matrix[ty][tx]
                + weight_matrix[ty + power_two / 2][tx];
        }}
        __syncthreads();
    }}
    if (ty == 0) {{
        partial[by * HID + tx] = weight_matrix[0][tx];
    }}
}}
"""

    def launches(self) -> list[Launch]:
        grid = self.n_in // self.HID
        return [Launch("bpnn_layerforward", grid, (16, 16),
                       ("input", "weights", "partial"))]

    def setup(self, dev):
        self.input = self.rng.uniform(0, 1, self.n_in + 1).astype(np.float32)
        self.weights = self.rng.standard_normal(
            (self.n_in, self.HID)).astype(np.float32)
        blocks = self.n_in // self.HID
        return {
            "input": dev.to_device(self.input),
            "weights": dev.to_device(self.weights),
            "partial": dev.zeros(blocks * self.HID),
        }

    def verify(self, buffers) -> None:
        blocks = self.n_in // self.HID
        got = buffers["partial"].to_host().reshape(blocks, self.HID)
        w = self.weights.reshape(blocks, self.HID, self.HID)
        x = self.input[1:].reshape(blocks, self.HID)
        ref = (w * x[:, :, None]).sum(axis=1)
        np.testing.assert_allclose(got, ref, rtol=2e-3, atol=1e-3)
