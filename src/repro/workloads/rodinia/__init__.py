"""Rodinia workloads (Che et al.)."""
