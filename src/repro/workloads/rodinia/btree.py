"""BT — B+-tree lookup (Rodinia ``findK``), CI group, simplified.

Each thread walks an implicit B+-tree for its own query key: the node
accesses are data-dependent (irregular), so CATT conservatively leaves the
TLP alone — and with small trees the working set is cache-friendly anyway.
"""

from __future__ import annotations

import numpy as np

from ..base import Launch, Workload

FANOUT = 8


class BTree(Workload):
    name = "BT"
    group = "CI"
    description = "B+ tree"
    paper_input = "mil.txt"
    smem_kb = 0.0

    def _configure(self) -> None:
        if self.scale == "bench":
            self.levels = 4               # 8^4 = 4096 keys
            self.nqueries = 512
        else:
            self.levels = 3
            self.nqueries = 256

    @property
    def nkeys(self) -> int:
        return FANOUT ** self.levels

    def source(self) -> str:
        return f"""
#define FANOUT {FANOUT}
#define LEVELS {self.levels}
#define NQ {self.nqueries}

__global__ void btree_findk(int *keys, int *offsets, int *queries, int *answers) {{
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    if (tid < NQ) {{
        int q = queries[tid];
        int node = 0;
        for (int level = 0; level < LEVELS; level++) {{
            int child = 0;
            for (int f = 1; f < FANOUT; f++) {{
                if (q >= keys[node * FANOUT + f]) {{
                    child = f;
                }}
            }}
            node = offsets[node] + child;
        }}
        answers[tid] = node;
    }}
}}
"""

    def launches(self) -> list[Launch]:
        grid = -(-self.nqueries // 256)
        return [Launch("btree_findk", grid, 256,
                       ("keys", "offsets", "queries", "answers"))]

    def _build_tree(self):
        """Implicit B+-tree over sorted keys 0..nkeys-1.

        Node ``n`` at level ``l`` covers a contiguous key range; ``keys``
        holds each node's FANOUT separator keys, ``offsets`` the index of its
        first child.  Leaf 'nodes' are identified by their final node index.
        """
        total_nodes = sum(FANOUT ** l for l in range(self.levels))
        keys = np.zeros((total_nodes, FANOUT), dtype=np.int32)
        offsets = np.zeros(total_nodes, dtype=np.int32)
        node = 0
        level_start = 0
        for level in range(self.levels):
            count = FANOUT ** level
            next_start = level_start + count
            span = self.nkeys // (FANOUT ** (level + 1))
            for i in range(count):
                base = i * span * FANOUT
                for f in range(FANOUT):
                    keys[node, f] = base + f * span
                offsets[node] = next_start + i * FANOUT if level < self.levels - 1 \
                    else i * FANOUT
                node += 1
            level_start = next_start
        return keys, offsets

    def setup(self, dev):
        self.keys, self.offsets = self._build_tree()
        self.queries = self.rng.integers(
            0, self.nkeys, self.nqueries).astype(np.int32)
        return {
            "keys": dev.to_device(self.keys),
            "offsets": dev.to_device(self.offsets),
            "queries": dev.to_device(self.queries),
            "answers": dev.zeros(self.nqueries, dtype=np.int32),
        }

    def verify(self, buffers) -> None:
        # Walking the implicit tree lands exactly on the query key's index
        # (keys are 0..nkeys-1 with uniform spans).
        got = buffers["answers"].to_host()
        np.testing.assert_array_equal(got, self.queries)
