"""PF — particle filter (Rodinia).

The paper's multi-phase case: kernel 1 mixes two divergent loops (the
per-particle neighborhood gather) with one coalesced loop, and kernels 2–4
are coalesced.  CATT throttles only the first two loops of kernel 1; BFTT's
single TLP either under-throttles them or over-throttles the rest (§5.1's
PF discussion, Table 3).
"""

from __future__ import annotations

import numpy as np

from ..base import Launch, Workload


class ParticleFilter(Workload):
    name = "PF"
    group = "CS"
    description = "Particle filter"
    paper_input = "128x128x10"
    smem_kb = 4.00

    def _configure(self) -> None:
        if self.scale == "bench":
            self.nparticles = 1536           # 3 TBs of 512 (paper: (16,3))
            self.num_ones = 48
            self.sum_len = 64
        else:
            self.nparticles = 512
            self.num_ones = 12
            self.sum_len = 16
        self.block = 512
        self.img = 64 * 64

    def source(self) -> str:
        return f"""
#define NP {self.nparticles}
#define NUM_ONES {self.num_ones}
#define SUM_LEN {self.sum_len}
#define IMG {self.img}

__global__ void pf_likelihood(float *arrayX, float *arrayY, int *ind,
                              float *I, float *likelihood, float *partial) {{
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    if (tid < NP) {{
        for (int k = 0; k < NUM_ONES; k++) {{
            int ix = (int)(arrayX[tid]) + k;
            int iy = (int)(arrayY[tid]);
            int idx = ix * 64 + iy;
            if (idx >= IMG) {{
                idx = idx % IMG;
            }}
            if (idx < 0) {{
                idx = 0;
            }}
            ind[tid * NUM_ONES + k] = idx;
        }}
        float lk = 0.0f;
        for (int k = 0; k < NUM_ONES; k++) {{
            float p = I[ind[tid * NUM_ONES + k]];
            lk += (p - 100.0f) * (p - 100.0f) - (p - 228.0f) * (p - 228.0f);
        }}
        likelihood[tid] = lk / NUM_ONES;
        float acc = 0.0f;
        for (int j = 0; j < SUM_LEN; j++) {{
            acc += partial[j];
        }}
        likelihood[tid] = likelihood[tid] + acc * 0.000001f;
    }}
}}

__global__ void pf_weights(float *weights, float *likelihood) {{
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    if (tid < NP) {{
        for (int r = 0; r < 8; r++) {{
            weights[tid] = weights[tid] * 0.5f + likelihood[tid] * 0.125f;
        }}
    }}
}}

__global__ void pf_normalize(float *weights, float *norm) {{
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    if (tid < NP) {{
        for (int r = 0; r < 8; r++) {{
            norm[tid] += weights[tid] * 0.125f;
        }}
    }}
}}

__global__ void pf_moments(float *arrayX, float *arrayY, float *norm, float *xe) {{
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    if (tid < NP) {{
        float acc = 0.0f;
        for (int r = 0; r < 8; r++) {{
            acc += arrayX[tid] * norm[tid] * 0.125f + arrayY[tid] * 0.0f;
        }}
        xe[tid] = acc;
    }}
}}
"""

    def launches(self) -> list[Launch]:
        grid = -(-self.nparticles // self.block)
        return [
            Launch("pf_likelihood", grid, self.block,
                   ("arrayX", "arrayY", "ind", "I", "likelihood", "partial")),
            Launch("pf_weights", grid, self.block, ("weights", "likelihood")),
            Launch("pf_normalize", grid, self.block, ("weights", "norm")),
            Launch("pf_moments", grid, self.block,
                   ("arrayX", "arrayY", "norm", "xe")),
        ]

    def setup(self, dev):
        n = self.nparticles
        self.arrayX = self.rng.uniform(0, 60, n).astype(np.float32)
        self.arrayY = self.rng.uniform(0, 60, n).astype(np.float32)
        self.I = self.rng.uniform(0, 255, self.img).astype(np.float32)
        self.partial = self.rng.standard_normal(self.sum_len).astype(np.float32)
        self.weights0 = np.full(n, 1.0 / n, dtype=np.float32)
        return {
            "arrayX": dev.to_device(self.arrayX),
            "arrayY": dev.to_device(self.arrayY),
            "ind": dev.zeros(n * self.num_ones, dtype=np.int32),
            "I": dev.to_device(self.I),
            "likelihood": dev.zeros(n),
            "partial": dev.to_device(self.partial),
            "weights": dev.to_device(self.weights0),
            "norm": dev.zeros(n),
            "xe": dev.zeros(n),
        }

    def verify(self, buffers) -> None:
        n = self.nparticles
        ks = np.arange(self.num_ones)
        ix = self.arrayX.astype(np.int32)[:, None] + ks[None, :]
        iy = self.arrayY.astype(np.int32)[:, None]
        idx = ix * 64 + iy
        idx = np.where(idx >= self.img, idx % self.img, idx)
        idx = np.maximum(idx, 0)
        p = self.I[idx]
        lk = (((p - 100.0) ** 2 - (p - 228.0) ** 2).sum(axis=1)
              / self.num_ones).astype(np.float32)
        lk = lk + np.float32(self.partial.sum() * 0.000001)
        w = self.weights0.copy()
        for _ in range(8):
            w = w * np.float32(0.5) + lk * np.float32(0.125)
        norm = np.zeros(n, dtype=np.float32)
        for _ in range(8):
            norm += w * np.float32(0.125)
        np.testing.assert_allclose(
            buffers["weights"].to_host(), w, rtol=2e-3, atol=1e-2
        )
        np.testing.assert_allclose(
            buffers["norm"].to_host(), norm, rtol=2e-3, atol=1e-2
        )
