"""CFD — Euler3D CFD solver (Rodinia), simplified to its memory structure.

Four kernels as in Table 3 (baseline TLP (6,10): 192-thread blocks, ten TBs
resident).  The flux kernel's neighbor gather is data-dependent (irregular),
so CATT conservatively preserves the baseline TLP — like BFS, this is a case
where "CATT preserves the original level of TLP not to degrade the
performance" (§5.1).
"""

from __future__ import annotations

import numpy as np

from ..base import Launch, Workload

NNB = 4      # neighbors per element
NVAR = 5     # density, momentum x3, energy


class Cfd(Workload):
    name = "CFD"
    group = "CS"
    description = "CFD solver"
    paper_input = "missile.domn.0.2M"
    smem_kb = 0.0

    def _configure(self) -> None:
        if self.scale == "bench":
            self.nelr = 1920     # 10 TBs of 192 threads
        else:
            self.nelr = 384
        self.block = 192

    def source(self) -> str:
        return f"""
#define NELR {self.nelr}
#define NNB {NNB}
#define NVAR {NVAR}

__global__ void cfd_initialize(float *variables, float *ff_variable) {{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < NELR) {{
        for (int j = 0; j < NVAR; j++) {{
            variables[j * NELR + i] = ff_variable[j];
        }}
    }}
}}

__global__ void cfd_step_factor(float *variables, float *areas, float *step_factors) {{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < NELR) {{
        float density = variables[0 * NELR + i];
        float mx = variables[1 * NELR + i];
        float my = variables[2 * NELR + i];
        float speed2 = (mx * mx + my * my) / (density * density + 1.0f);
        step_factors[i] = 0.5f / (sqrtf(areas[i]) * (sqrtf(speed2) + 1.0f));
    }}
}}

__global__ void cfd_compute_flux(int *neighbors, float *normals,
                                 float *variables, float *fluxes) {{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < NELR) {{
        float flux = 0.0f;
        for (int j = 0; j < NNB; j++) {{
            int nb = neighbors[j * NELR + i];
            float normal = normals[j * NELR + i];
            if (nb >= 0) {{
                flux += normal * variables[0 * NELR + nb];
            }}
        }}
        fluxes[i] = flux;
    }}
}}

__global__ void cfd_time_step(float *variables, float *fluxes, float *step_factors) {{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < NELR) {{
        variables[0 * NELR + i] = variables[0 * NELR + i]
            + step_factors[i] * fluxes[i];
    }}
}}
"""

    def launches(self) -> list[Launch]:
        grid = -(-self.nelr // self.block)
        return [
            Launch("cfd_initialize", grid, self.block,
                   ("variables", "ff_variable")),
            Launch("cfd_step_factor", grid, self.block,
                   ("variables", "areas", "step_factors")),
            Launch("cfd_compute_flux", grid, self.block,
                   ("neighbors", "normals", "variables", "fluxes")),
            Launch("cfd_time_step", grid, self.block,
                   ("variables", "fluxes", "step_factors")),
        ]

    def setup(self, dev):
        n = self.nelr
        self.ff = np.array([1.0, 0.5, 0.25, 0.1, 2.5], dtype=np.float32)
        self.areas = self.rng.uniform(0.5, 2.0, n).astype(np.float32)
        nbrs = self.rng.integers(-1, n, size=(NNB, n)).astype(np.int32)
        self.neighbors = nbrs
        self.normals = self.rng.standard_normal((NNB, n)).astype(np.float32)
        return {
            "variables": dev.zeros(NVAR * n),
            "ff_variable": dev.to_device(self.ff),
            "areas": dev.to_device(self.areas),
            "step_factors": dev.zeros(n),
            "neighbors": dev.to_device(nbrs),
            "normals": dev.to_device(self.normals),
            "fluxes": dev.zeros(n),
        }

    def verify(self, buffers) -> None:
        n = self.nelr
        var0 = np.tile(self.ff[:, None], (1, n)).astype(np.float32)
        density, mx, my = var0[0], var0[1], var0[2]
        speed2 = (mx * mx + my * my) / (density * density + 1.0)
        sf = (0.5 / (np.sqrt(self.areas) * (np.sqrt(speed2) + 1.0))).astype(np.float32)
        nb, nm = self.neighbors, self.normals
        contrib = np.where(nb >= 0, nm * var0[0][np.maximum(nb, 0)], 0.0)
        fluxes = contrib.sum(axis=0).astype(np.float32)
        expected0 = var0[0] + sf * fluxes
        got = buffers["variables"].to_host().reshape(NVAR, n)
        np.testing.assert_allclose(got[0], expected0, rtol=1e-4, atol=1e-5)
        np.testing.assert_allclose(
            buffers["step_factors"].to_host(), sf, rtol=1e-4, atol=1e-6
        )
        np.testing.assert_allclose(
            buffers["fluxes"].to_host(), fluxes, rtol=1e-4, atol=1e-5
        )
