"""LUD — LU decomposition, diagonal-block kernel (Rodinia), CI group.

One 16×16 diagonal block is factorized in shared memory (Table 2: 6 KB SMEM
in the original); off-chip traffic is a single coalesced load/store pair.
"""

from __future__ import annotations

import numpy as np

from ..base import Launch, Workload

B = 16  # block dimension


class Lud(Workload):
    name = "LUD"
    group = "CI"
    description = "LU decomposition"
    paper_input = "256"
    smem_kb = 6.00

    def _configure(self) -> None:
        self.nblocks = 4 if self.scale == "bench" else 2

    def source(self) -> str:
        return f"""
#define B {B}

__global__ void lud_diagonal(float *m) {{
    int tx = threadIdx.x;
    int bx = blockIdx.x;
    __shared__ float shadow[{B}][{B}];
    for (int i = 0; i < B; i++) {{
        shadow[i][tx] = m[bx * B * B + i * B + tx];
    }}
    __syncthreads();
    for (int i = 0; i < B - 1; i++) {{
        if (tx > i) {{
            shadow[tx][i] = shadow[tx][i] / shadow[i][i];
            for (int j = i + 1; j < B; j++) {{
                if (tx > i) {{
                    shadow[tx][j] = shadow[tx][j] - shadow[tx][i] * shadow[i][j];
                }}
            }}
        }}
        __syncthreads();
    }}
    for (int i = 0; i < B; i++) {{
        m[bx * B * B + i * B + tx] = shadow[i][tx];
    }}
}}
"""

    def launches(self) -> list[Launch]:
        return [Launch("lud_diagonal", self.nblocks, B, ("m",))]

    def setup(self, dev):
        # Diagonally dominant blocks so the factorization is stable.
        blocks = []
        for _ in range(self.nblocks):
            a = self.rng.uniform(0.1, 1.0, (B, B)).astype(np.float32)
            a += np.eye(B, dtype=np.float32) * B
            blocks.append(a)
        self.m0 = np.stack(blocks)
        return {"m": dev.to_device(self.m0)}

    @staticmethod
    def _lu_ref(a: np.ndarray) -> np.ndarray:
        """Doolittle LU without pivoting, L (unit diag) and U packed."""
        lu = a.astype(np.float64).copy()
        n = a.shape[0]
        for i in range(n - 1):
            lu[i + 1 :, i] /= lu[i, i]
            lu[i + 1 :, i + 1 :] -= np.outer(lu[i + 1 :, i], lu[i, i + 1 :])
        return lu

    def verify(self, buffers) -> None:
        got = buffers["m"].to_host()
        for k in range(self.nblocks):
            ref = self._lu_ref(self.m0[k])
            np.testing.assert_allclose(got[k], ref, rtol=2e-3, atol=1e-3)
