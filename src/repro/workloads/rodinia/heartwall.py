"""HW — Heart Wall tracking (Rodinia), CI group, simplified.

One TB per tracked sample point: the template is staged into shared memory
(the original uses 11.59 KB — Table 2) and every thread computes the sum of
squared differences of its column of the search window.  Window reads are
coalesced; template reads come from shared memory.
"""

from __future__ import annotations

import numpy as np

from ..base import Launch, Workload

TPL = 32      # template edge (threads per TB = TPL)
WIN = 8       # search-window rows per thread


class HeartWall(Workload):
    name = "HW"
    group = "CI"
    description = "Heart wall"
    paper_input = "test.avi"
    smem_kb = 11.59

    def _configure(self) -> None:
        self.npoints = 8 if self.scale == "bench" else 3

    def source(self) -> str:
        return f"""
#define TPL {TPL}
#define WIN {WIN}

__global__ void hw_track(float *templates, float *windows, float *ssd) {{
    __shared__ float s_tpl[TPL * WIN];
    int point = blockIdx.x;
    int tx = threadIdx.x;
    for (int r = 0; r < WIN; r++) {{
        s_tpl[r * TPL + tx] = templates[point * TPL * WIN + r * TPL + tx];
    }}
    __syncthreads();
    float acc = 0.0f;
    for (int r = 0; r < WIN; r++) {{
        float d = windows[point * TPL * WIN + r * TPL + tx] - s_tpl[r * TPL + tx];
        acc += d * d;
    }}
    ssd[point * TPL + tx] = acc;
}}
"""

    def launches(self) -> list[Launch]:
        return [Launch("hw_track", self.npoints, TPL,
                       ("templates", "windows", "ssd"))]

    def setup(self, dev):
        n = self.npoints * TPL * WIN
        self.templates = self.rng.uniform(0, 255, n).astype(np.float32)
        self.windows = self.rng.uniform(0, 255, n).astype(np.float32)
        return {
            "templates": dev.to_device(self.templates),
            "windows": dev.to_device(self.windows),
            "ssd": dev.zeros(self.npoints * TPL),
        }

    def verify(self, buffers) -> None:
        t = self.templates.reshape(self.npoints, WIN, TPL)
        w = self.windows.reshape(self.npoints, WIN, TPL)
        ref = ((w - t) ** 2).sum(axis=1).reshape(-1)
        np.testing.assert_allclose(
            buffers["ssd"].to_host(), ref, rtol=1e-4, atol=1e-2
        )
