"""HM — Huffman decoding stage (Rodinia 'huffman'), CI group, simplified.

Each thread decodes a fixed-length slice of the bitstream against a small
codebook held in shared memory (Table 2: 6.13 KB SMEM).  Off-chip traffic is
a single coalesced sweep; the hot loop runs from shared memory.
"""

from __future__ import annotations

import numpy as np

from ..base import Launch, Workload

CODEBOOK = 256      # one entry per byte symbol
SYMS_PER_THREAD = 8


class Huffman(Workload):
    name = "HM"
    group = "CI"
    description = "Huffman"
    paper_input = "test1024"
    smem_kb = 6.13

    def _configure(self) -> None:
        if self.scale == "bench":
            self.nthreads = 1024
        else:
            self.nthreads = 256
        self.block = 256

    def source(self) -> str:
        return f"""
#define NT {self.nthreads}
#define CB {CODEBOOK}
#define SPT {SYMS_PER_THREAD}

__global__ void huffman_decode(int *codes, int *lengths, int *stream, int *out) {{
    __shared__ int s_codes[CB];
    __shared__ int s_lengths[CB];
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    int lane = threadIdx.x;
    s_codes[lane] = codes[lane];
    s_lengths[lane] = lengths[lane];
    __syncthreads();
    if (tid < NT) {{
        int acc = 0;
        for (int s = 0; s < SPT; s++) {{
            int sym = stream[tid * SPT + s] & 255;
            acc = acc + s_codes[sym] * s_lengths[sym];
        }}
        out[tid] = acc;
    }}
}}
"""

    def launches(self) -> list[Launch]:
        grid = -(-self.nthreads // self.block)
        return [Launch("huffman_decode", grid, self.block,
                       ("codes", "lengths", "stream", "out"))]

    def setup(self, dev):
        self.codes = self.rng.integers(1, 1 << 16, CODEBOOK).astype(np.int32)
        self.lengths = self.rng.integers(1, 17, CODEBOOK).astype(np.int32)
        self.stream = self.rng.integers(
            0, 256, self.nthreads * SYMS_PER_THREAD).astype(np.int32)
        return {
            "codes": dev.to_device(self.codes),
            "lengths": dev.to_device(self.lengths),
            "stream": dev.to_device(self.stream),
            "out": dev.zeros(self.nthreads, dtype=np.int32),
        }

    def verify(self, buffers) -> None:
        syms = (self.stream & 255).reshape(self.nthreads, SYMS_PER_THREAD)
        ref = (self.codes[syms] * self.lengths[syms]).sum(axis=1,
                                                          dtype=np.int64)
        ref = ref.astype(np.int32)  # C int accumulation wraps
        np.testing.assert_array_equal(buffers["out"].to_host(), ref)
