"""BFS — breadth-first search (Rodinia).

The paper's irregular-access case (§4.2: "in BFS, each thread traverses from
one node in a graph to a neighboring node ... the inter-thread distance is
constantly changed").  CATT cannot bound ``C_tid`` at compile time, sets it
to 1 conservatively, finds a small footprint, and preserves the baseline TLP
(Table 3: (16,4) everywhere).

Iterative: the host relaunches both kernels until the frontier empties.
"""

from __future__ import annotations

import numpy as np

from ..base import Launch, Workload


class Bfs(Workload):
    name = "BFS"
    group = "CS"
    description = "Breadth-First search"
    paper_input = "graph128k.txt"
    smem_kb = 0.0

    MAX_ITERS = 64

    def _configure(self) -> None:
        if self.scale == "bench":
            self.n_nodes, self.avg_degree = 2048, 8
        else:
            self.n_nodes, self.avg_degree = 512, 6
        self.block = 512

    def source(self) -> str:
        return f"""
#define N_NODES {self.n_nodes}

__global__ void bfs_kernel1(int *starts, int *edges, int *mask,
                            int *visited, int *cost, int *updating) {{
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    if (tid < N_NODES && mask[tid]) {{
        mask[tid] = 0;
        for (int e = starts[tid]; e < starts[tid + 1]; e++) {{
            int nid = edges[e];
            if (!visited[nid]) {{
                cost[nid] = cost[tid] + 1;
                updating[nid] = 1;
            }}
        }}
    }}
}}

__global__ void bfs_kernel2(int *mask, int *visited, int *updating, int *over) {{
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    if (tid < N_NODES && updating[tid]) {{
        mask[tid] = 1;
        visited[tid] = 1;
        updating[tid] = 0;
        over[0] = 1;
    }}
}}
"""

    def launches(self) -> list[Launch]:
        grid = -(-self.n_nodes // self.block)
        return [
            Launch("bfs_kernel1", grid, self.block,
                   ("starts", "edges", "mask", "visited", "cost", "updating")),
            Launch("bfs_kernel2", grid, self.block,
                   ("mask", "visited", "updating", "over")),
        ]

    def _build_graph(self):
        n, deg = self.n_nodes, self.avg_degree
        # Ring + random chords: connected, irregular neighbour lists.
        targets = [set() for _ in range(n)]
        for v in range(n):
            targets[v].add((v + 1) % n)
            targets[(v + 1) % n].add(v)
        extra = self.rng.integers(0, n, size=(n * (deg - 2) // 2, 2))
        for a, b in extra:
            if a != b:
                targets[int(a)].add(int(b))
                targets[int(b)].add(int(a))
        starts = np.zeros(n + 1, dtype=np.int32)
        edges: list[int] = []
        for v in range(n):
            nbrs = sorted(targets[v])
            edges.extend(nbrs)
            starts[v + 1] = len(edges)
        return starts, np.array(edges, dtype=np.int32)

    def setup(self, dev):
        self.starts, self.edges = self._build_graph()
        n = self.n_nodes
        mask = np.zeros(n, dtype=np.int32)
        visited = np.zeros(n, dtype=np.int32)
        cost = np.full(n, -1, dtype=np.int32)
        mask[0] = 1
        visited[0] = 1
        cost[0] = 0
        return {
            "starts": dev.to_device(self.starts),
            "edges": dev.to_device(self.edges),
            "mask": dev.to_device(mask),
            "visited": dev.to_device(visited),
            "cost": dev.to_device(cost),
            "updating": dev.zeros(n, dtype=np.int32),
            "over": dev.zeros(1, dtype=np.int32),
        }

    def execute(self, dev, unit, buffers, **launch_kw):
        """Host loop: relaunch until kernel 2 reports no updates."""
        k1, k2 = self.launches()
        results = []
        for _ in range(self.MAX_ITERS):
            buffers["over"].view()[0] = 0
            results.append(dev.launch(
                unit, k1.kernel, k1.grid, k1.block,
                [buffers[a] for a in k1.args], **launch_kw))
            results.append(dev.launch(
                unit, k2.kernel, k2.grid, k2.block,
                [buffers[a] for a in k2.args], **launch_kw))
            if buffers["over"].view()[0] == 0:
                break
        return results

    def verify(self, buffers) -> None:
        # Reference BFS with a deque on the host graph.
        from collections import deque

        n = self.n_nodes
        ref = np.full(n, -1, dtype=np.int32)
        ref[0] = 0
        q = deque([0])
        while q:
            v = q.popleft()
            for e in range(self.starts[v], self.starts[v + 1]):
                w = self.edges[e]
                if ref[w] < 0:
                    ref[w] = ref[v] + 1
                    q.append(w)
        np.testing.assert_array_equal(buffers["cost"].to_host(), ref)
