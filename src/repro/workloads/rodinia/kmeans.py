"""KM — k-means clustering (Rodinia).

Kernel 1 (assign) re-walks the cluster centroids for every point: the
centroid rows are re-used across the *outer* cluster loop, and the
column-major ``feature[f*npoints+tid]`` walk is re-used across clusters too —
a nested-reuse footprint CATT throttles hard (Table 3: KM (2,8)/(1,8)).
Kernel 2 (swap) transposes the feature matrix with a divergent row-major
store, also throttled.  Contention is uniform, so CATT ≈ BFTT here (§5.1).
"""

from __future__ import annotations

import numpy as np

from ..base import Launch, Workload


class Kmeans(Workload):
    name = "KM"
    group = "CS"
    description = "Kmeans"
    paper_input = "819200.txt"
    smem_kb = 0.0

    def _configure(self) -> None:
        if self.scale == "bench":
            # 32 features: the swap kernel's divergent row-major store walks
            # 32 lines per warp (like the paper's 34-feature input), so both
            # kernels exceed the L1D and CATT throttles both (Table 3's KM).
            self.npoints, self.nclusters, self.nfeatures = 1024, 5, 32
        else:
            self.npoints, self.nclusters, self.nfeatures = 512, 3, 8

    def source(self) -> str:
        return f"""
#define NPOINTS {self.npoints}
#define NCLUSTERS {self.nclusters}
#define NFEATURES {self.nfeatures}

__global__ void kmeans_assign(float *feature, float *clusters, int *membership) {{
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    if (tid < NPOINTS) {{
        int index = 0;
        float min_dist = 3.402823e38f;
        for (int c = 0; c < NCLUSTERS; c++) {{
            float dist = 0.0f;
            for (int f = 0; f < NFEATURES; f++) {{
                float d = feature[f * NPOINTS + tid] - clusters[c * NFEATURES + f];
                dist += d * d;
            }}
            if (dist < min_dist) {{
                min_dist = dist;
                index = c;
            }}
        }}
        membership[tid] = index;
    }}
}}

__global__ void kmeans_swap(float *feature, float *feature_swap) {{
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    if (tid < NPOINTS) {{
        int f = 0;
        while (f < NFEATURES) {{
            feature_swap[tid * NFEATURES + f] = feature[f * NPOINTS + tid];
            f = f + 1;
        }}
    }}
}}
"""

    def launches(self) -> list[Launch]:
        grid = -(-self.npoints // 256)
        return [
            Launch("kmeans_assign", grid, 256,
                   ("feature", "clusters", "membership")),
            Launch("kmeans_swap", grid, 256, ("feature", "feature_swap")),
        ]

    def setup(self, dev):
        # feature is stored column-major: feature[f * npoints + p].
        self.feature = self.rng.standard_normal(
            (self.nfeatures, self.npoints)).astype(np.float32)
        self.clusters = self.rng.standard_normal(
            (self.nclusters, self.nfeatures)).astype(np.float32)
        return {
            "feature": dev.to_device(self.feature),
            "clusters": dev.to_device(self.clusters),
            "membership": dev.zeros(self.npoints, dtype=np.int32),
            "feature_swap": dev.zeros((self.npoints, self.nfeatures)),
        }

    def verify(self, buffers) -> None:
        pts = self.feature.T  # (npoints, nfeatures)
        d2 = ((pts[:, None, :] - self.clusters[None, :, :]) ** 2).sum(axis=2)
        ref = d2.argmin(axis=1).astype(np.int32)
        np.testing.assert_array_equal(buffers["membership"].to_host(), ref)
        np.testing.assert_allclose(
            buffers["feature_swap"].to_host(), pts, rtol=1e-6
        )
