"""MC — Myocyte cardiac cell simulation (Rodinia), CI group, simplified.

Per-thread ODE integration (forward Euler over a stiff-ish exponential
system): dominated by SFU work with a single coalesced state load/store —
the compute-bound end of Table 2.
"""

from __future__ import annotations

import numpy as np

from ..base import Launch, Workload


class Myocyte(Workload):
    name = "MC"
    group = "CI"
    description = "Myocyte"
    paper_input = "100"
    smem_kb = 0.0

    DT = 0.05

    def _configure(self) -> None:
        if self.scale == "bench":
            self.ncells, self.steps = 256, 24
        else:
            self.ncells, self.steps = 64, 8

    def source(self) -> str:
        return f"""
#define NC {self.ncells}
#define STEPS {self.steps}
#define DT {self.DT}f

__global__ void myocyte_solve(float *v0, float *w0, float *v_out, float *w_out) {{
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    if (tid < NC) {{
        float v = v0[tid];
        float w = w0[tid];
        for (int t = 0; t < STEPS; t++) {{
            float dv = v - v * v * v / 3.0f - w + 0.5f;
            float dw = 0.08f * (v + 0.7f - 0.8f * w) * expf(-0.01f * v * v);
            v = v + DT * dv;
            w = w + DT * dw;
        }}
        v_out[tid] = v;
        w_out[tid] = w;
    }}
}}
"""

    def launches(self) -> list[Launch]:
        grid = -(-self.ncells // 64)
        return [Launch("myocyte_solve", grid, 64,
                       ("v0", "w0", "v_out", "w_out"))]

    def setup(self, dev):
        self.v0 = self.rng.uniform(-1, 1, self.ncells).astype(np.float32)
        self.w0 = self.rng.uniform(-1, 1, self.ncells).astype(np.float32)
        return {
            "v0": dev.to_device(self.v0),
            "w0": dev.to_device(self.w0),
            "v_out": dev.zeros(self.ncells),
            "w_out": dev.zeros(self.ncells),
        }

    def verify(self, buffers) -> None:
        v = self.v0.astype(np.float32).copy()
        w = self.w0.astype(np.float32).copy()
        dt = np.float32(self.DT)
        for _ in range(self.steps):
            dv = v - v * v * v / np.float32(3.0) - w + np.float32(0.5)
            dw = (np.float32(0.08) * (v + np.float32(0.7) - np.float32(0.8) * w)
                  * np.exp(np.float32(-0.01) * v * v, dtype=np.float32))
            v = (v + dt * dv).astype(np.float32)
            w = (w + dt * dw).astype(np.float32)
        np.testing.assert_allclose(buffers["v_out"].to_host(), v,
                                   rtol=2e-4, atol=1e-4)
        np.testing.assert_allclose(buffers["w_out"].to_host(), w,
                                   rtol=2e-4, atol=1e-4)
