"""CATT static analysis (the paper's §4.1–§4.2).

Layers, bottom-up:

* :mod:`affine` — Eq. 5: index expressions as linear forms;
* :mod:`loops` — loop discovery + off-chip reference collection;
* :mod:`locality` — §3.1/Eq. 6: intra-/inter-thread distances;
* :mod:`coalescing` — Eq. 7: per-warp request counts;
* :mod:`footprint` — Eq. 8: per-loop L1D footprints;
* :mod:`occupancy` — Eqs. 1–4: resident TBs and carveout choice;
* :mod:`throttle` — Eq. 9: the (N, M) search;
* :mod:`kernel_info` — the orchestration producing :class:`KernelAnalysis`.
"""

from .affine import AffineForm, SymbolicEnv, analyze_expr
from .coalescing import paper_req_warp, requests_per_warp, requests_per_warp_enumerated
from .footprint import AccessFootprint, LoopFootprint, loop_footprint
from .kernel_info import (
    KernelAnalysis,
    LoopAnalysis,
    TBThrottlePlan,
    analyze_kernel,
    tb_throttle_plan,
)
from .locality import AccessLocality, classify_access, classify_loop, loop_has_reuse
from .loops import KernelLoops, LoopRecord, MemAccess, find_loops
from .occupancy import (
    OccupancyResult,
    compute_occupancy,
    estimate_registers,
    occupancy_for_kernel,
    shared_usage_bytes,
)
from .report import format_analysis
from .throttle import SearchBudget, ThrottleDecision, candidate_ns, find_throttle

__all__ = [
    "AffineForm",
    "SymbolicEnv",
    "analyze_expr",
    "paper_req_warp",
    "requests_per_warp",
    "requests_per_warp_enumerated",
    "AccessFootprint",
    "LoopFootprint",
    "loop_footprint",
    "KernelAnalysis",
    "LoopAnalysis",
    "TBThrottlePlan",
    "analyze_kernel",
    "tb_throttle_plan",
    "AccessLocality",
    "classify_access",
    "classify_loop",
    "loop_has_reuse",
    "KernelLoops",
    "LoopRecord",
    "MemAccess",
    "find_loops",
    "OccupancyResult",
    "compute_occupancy",
    "estimate_registers",
    "occupancy_for_kernel",
    "shared_usage_bytes",
    "format_analysis",
    "ThrottleDecision",
    "candidate_ns",
    "find_throttle",
    "SearchBudget",
]
