"""Compile-time coalescing model (Eq. 7).

``REQ_warp`` — the number of cache-line transactions one warp generates for
one memory instruction:

* ``C_tid == 0``: every lane reads the same address → 1 line;
* regular stride: the exact number of distinct lines covered by
  ``lane * C_tid * element_size`` for the 32 lanes (for 4-byte elements this
  reduces to the paper's ``min(C_tid, 32)``);
* irregular: conservatively 1 (the paper's §4.2 choice — never throttle more
  than the evidence supports).

For multidimensional TBs the closed form can be wrong (a warp may span
``threadIdx.y`` rows), so §4.2 "examines every address accessed by each
thread in a warp": :func:`requests_per_warp_enumerated` does exactly that.
"""

from __future__ import annotations

from ..sim.interp import WARP_SIZE
from .affine import TIDX, TIDY, TIDZ, AffineForm

CACHE_LINE = 128


def requests_per_warp(inter_thread_elems: int | None, element_size: int,
                      cache_line: int = CACHE_LINE,
                      warp_size: int = WARP_SIZE) -> int:
    """Eq. 7, generalized to any element size.

    ``inter_thread_elems`` is the element-distance between adjacent lanes
    (``C_tid``); ``None`` means irregular → conservative 1.
    """
    if inter_thread_elems is None:
        return 1  # §4.2: conservative C_tid = 1 for irregular accesses
    c = abs(inter_thread_elems)
    if c == 0:
        return 1
    stride = c * element_size
    lines = {(lane * stride) // cache_line for lane in range(warp_size)}
    return min(len(lines), warp_size)


def requests_per_warp_enumerated(
    form: AffineForm,
    element_size: int,
    block_dim: tuple[int, int, int],
    cache_line: int = CACHE_LINE,
    warp_size: int = WARP_SIZE,
    warp_id: int = 0,
) -> int | None:
    """Exact per-warp request count by enumerating lane addresses.

    Evaluates the affine form for each lane of ``warp_id``, with loop
    iterators and block indexes fixed at zero (they are warp-uniform, so they
    only shift all addresses together — line-boundary effects from the shift
    are second-order).  Returns None when the form is irregular.
    """
    if form.irregular:
        return None
    bx, by, bz = block_dim
    volume = bx * by * bz
    lines = set()
    for lane in range(warp_size):
        flat = warp_id * warp_size + lane
        if flat >= volume:
            # Partial warp: lanes past the block volume carry no thread, so
            # they generate no transaction.  Without this clamp a phantom
            # lane decodes to out-of-range thread coordinates and inflates
            # the request count.
            break
        tx = flat % bx
        ty = (flat // bx) % by
        tz = flat // (bx * by)
        index = form.const
        for sym, coeff in form.coeffs:
            if sym == TIDX:
                index += coeff * tx
            elif sym == TIDY:
                index += coeff * ty
            elif sym == TIDZ:
                index += coeff * tz
            # iterators / blockIdx / params: warp-uniform → contribute 0
        lines.add((index * element_size) // cache_line)
    if not lines:
        return 0  # warp_id entirely past the block volume: no live lanes
    return min(len(lines), warp_size)


def paper_req_warp(c_tid: int | None, warp_size: int = WARP_SIZE) -> int:
    """The literal Eq. 7 (4-byte elements): ``1 if C_tid==0 else min(C_tid, 32)``."""
    if c_tid is None:
        return 1
    if c_tid == 0:
        return 1
    return min(abs(c_tid), warp_size)
