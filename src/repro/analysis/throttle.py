"""Throttling-factor search (Eq. 9 and §4.3's ordering rules).

Finds the smallest warp-division factor ``N`` (then, only if needed, the TB
reduction ``M``) that brings a loop's footprint inside the L1D:

    SIZE'_req = Σ REQ_warp × (#Warps_TB / N) × (#TB_SM − M)  ≤  L1D capacity

Rules from the paper:

* ``N`` is searched over powers of two and cannot exceed ``#Warps_TB``;
* warp-level throttling is preferred — ``M`` only grows once ``N`` is maxed;
* if even the minimum TLP (1 warp, 1 TB) does not fit, the loop is left
  untouched (the CORR case: "optimization ... is not taken into account");
* on unified-cache architectures TB-level throttling costs L1D capacity
  (the dummy ``__shared__`` array raises the carveout), so the capacity used
  to test a candidate ``M`` is supplied per-TB-count by the caller.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from ..errors import BudgetExceededError
from .footprint import LoopFootprint


@dataclass
class SearchBudget:
    """Caps on the throttling-factor search: wall clock and candidate count.

    The resilient driver (:mod:`repro.transform.pipeline`) threads one budget
    through a whole translation unit; when it runs out mid-search the current
    loop degrades to "left untouched" (exactly the paper's CORR posture) and
    the remaining kernels pass through with a ``CATT-W-BUDGET`` diagnostic —
    partial results instead of an unbounded compile.
    """

    wall_seconds: float | None = None
    max_candidates: int | None = None
    candidates_used: int = 0
    _deadline: float | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.wall_seconds is not None:
            self._deadline = time.perf_counter() + self.wall_seconds

    @property
    def expired(self) -> bool:
        if self._deadline is not None and time.perf_counter() > self._deadline:
            return True
        return (self.max_candidates is not None
                and self.candidates_used >= self.max_candidates)

    def charge(self, candidates: int = 1) -> None:
        """Consume ``candidates`` evaluations; raise when the budget is gone.

        The expiry check runs *before* the increment: callers charge ahead
        of each evaluation, so ``max_candidates=N`` admits exactly N
        evaluations and the (N+1)th charge raises with ``candidates_used``
        still reporting the N that actually ran.
        """
        if self.expired:
            raise BudgetExceededError(
                f"throttle-search budget exhausted after "
                f"{self.candidates_used} candidates")
        self.candidates_used += candidates


@dataclass(frozen=True)
class ThrottleDecision:
    """The (N, M) choice for one loop, plus the resulting TLP."""

    loop_id: int
    n: int                 # warp division factor (1 = no warp throttling)
    m: int                 # TB reduction (0 = no TB throttling)
    warps_per_tb: int      # original warps per TB
    tb_sm: int             # original TBs per SM
    size_req_lines: int | None  # Eq. 8 footprint; None = unbounded
    l1d_lines: int         # capacity the decision was tested against
    fits: bool             # False = contention unresolvable (CORR case)
    needed: bool           # True when the original footprint exceeded the L1D

    @property
    def active_warps(self) -> int:
        return max(self.warps_per_tb // self.n, 1)

    @property
    def active_tbs(self) -> int:
        return max(self.tb_sm - self.m, 1)

    @property
    def tlp(self) -> tuple[int, int]:
        """Table-3 style ``(#warps_TB, #TBs)`` pair."""
        return (self.active_warps, self.active_tbs)

    @property
    def throttles(self) -> bool:
        # m > 0 (not m > 1): a TB-only decision of (n=1, m=1) — the only
        # reachable shape when warps_per_tb == 1 — still reduces residency
        # by one TB and must count as throttling.
        return self.needed and self.fits and (self.n > 1 or self.m > 0)


def candidate_ns(warps_per_tb: int) -> list[int]:
    """Allowed warp-division factors: powers of two dividing ``warps_per_tb``
    (plus ``warps_per_tb`` itself so 1 active warp is always reachable)."""
    ns = [1]
    n = 2
    while n <= warps_per_tb:
        if warps_per_tb % n == 0:
            ns.append(n)
        n *= 2
    if ns[-1] != warps_per_tb:
        ns.append(warps_per_tb)
    return ns


def find_throttle(
    footprint: LoopFootprint,
    l1d_lines_for_tbs: Callable[[int], int],
    budget: SearchBudget | None = None,
) -> ThrottleDecision:
    """Resolve Eq. 9 for one loop.

    ``l1d_lines_for_tbs(tbs)`` returns the L1D capacity (in lines) available
    when ``tbs`` TBs are resident — constant for warp-level candidates
    (``tbs = tb_sm``), and accounting for the dummy-shared carveout cost for
    TB-level candidates.  ``budget`` (optional) caps the number of candidate
    evaluations; exhaustion raises :class:`repro.errors.BudgetExceededError`.
    """
    warps, tbs0 = footprint.warps_per_tb, footprint.tb_sm
    cap0 = l1d_lines_for_tbs(tbs0)
    base = footprint.size_req_lines
    common = dict(
        loop_id=footprint.loop_id,
        warps_per_tb=warps,
        tb_sm=tbs0,
        size_req_lines=base,
    )
    if base is None:
        # Unbounded footprint (unknown nested trip count, or a nested sweep
        # too large to ever fit): no throttling level can protect the reuse.
        return ThrottleDecision(n=1, m=0, l1d_lines=cap0, fits=False,
                                needed=True, **common)
    if base <= cap0:
        return ThrottleDecision(n=1, m=0, l1d_lines=cap0, fits=True,
                                needed=False, **common)
    # Phase 1 — warp-level throttling only (M = 0).
    for n in candidate_ns(warps):
        if budget is not None:
            budget.charge()
        if footprint.throttled_lines(n, 0) <= cap0:
            return ThrottleDecision(n=n, m=0, l1d_lines=cap0, fits=True,
                                    needed=True, **common)
    # Phase 2 — add TB-level throttling with N at its maximum.
    n_max = candidate_ns(warps)[-1]
    for m in range(1, tbs0):
        if budget is not None:
            budget.charge()
        cap = l1d_lines_for_tbs(tbs0 - m)
        if footprint.throttled_lines(n_max, m) <= cap:
            return ThrottleDecision(n=n_max, m=m, l1d_lines=cap, fits=True,
                                    needed=True, **common)
    # Unresolvable: leave the loop alone (paper's CORR case).
    cap_min = l1d_lines_for_tbs(1)
    return ThrottleDecision(n=1, m=0, l1d_lines=cap_min, fits=False,
                            needed=True, **common)
