"""Static transform-safety verifier and lint findings (``catt lint``).

CATT's warp-level transform (Fig. 4) serializes the warps of a TB into
guarded groups.  That is semantics-preserving exactly when no two warps of a
TB communicate through memory inside the split region: the loop holds no
barrier, every guard on the path to it is warp-convergent, and each thread's
writes stay inside a private index range.  The differential gate
(:mod:`repro.transform.validate`) checks this *dynamically* on one input;
this module proves it *statically* from the dataflow fixpoint, in two
halves:

* **Semantic legality** (:func:`verify_warp_split`) — per split loop, using
  the affine forms of :class:`~repro.analysis.dataflow.affineprop.AffineFlow`
  plus value-range reasoning over thread/block/iterator symbols:

  1. the loop contains no ``__syncthreads()``;
  2. every enclosing ``if`` guard is TB-uniform, or provably true for every
     thread of every launched block (range analysis);
  3. for every global array the loop writes, the interval of indexes one
     thread touches is disjoint from every other thread's interval
     (``|C_tid|`` exceeds the per-thread span over all enclosed iterations);
  4. the loop writes no ``__shared__`` array.

* **Structural translation validation** (:func:`split_shape_matches`) — the
  emitted kernel must be the original with each split loop replaced by the
  exact Fig. 4 pattern (guards partitioning ``[0, warps_per_tb)``, original
  loop object reused, barrier after every group) and at most the Fig. 5
  dummy-shared prologue prepended.  The matcher is independent of the
  transform implementation, so a buggy rewrite fails the match and falls
  back to the dynamic gate.

A transform that passes both halves is reported
``CATT-I-STATIC-SAFE`` and skips the lockstep interpreter run entirely
(:mod:`repro.transform.pipeline`).

The same per-access machinery powers the ``catt lint`` CLI findings:
irregular indexes, fully diverged references (``REQ_warp = 32``), divergent
barriers, and shared-memory race verdicts from the barrier-interval MHP
analysis (:mod:`repro.analysis.dataflow.races`).  Checks 3 and 4 above are
additionally subsumed per-array by a ``PROVED-SAFE`` race verdict: an array
whose every barrier interval is proved cross-thread disjoint cannot carry
intra-TB communication, so warp-split (a pure intra-TB reordering) keeps it
race-free even when the interval heuristics of checks 3/4 fail.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...frontend.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Block,
    DeclStmt,
    DoWhileStmt,
    Expr,
    ExprStmt,
    ForStmt,
    FunctionDef,
    Ident,
    IfStmt,
    IntLit,
    Stmt,
    SyncthreadsStmt,
    WhileStmt,
    path_to_stmt,
    statements_in,
    walk_expr,
)
from ..affine import (
    BIDX,
    BIDY,
    BIDZ,
    TIDX,
    TIDY,
    TIDZ,
    AffineForm,
    SymbolicEnv,
    analyze_expr,
)

_THREAD_AXES = {TIDX: 0, TIDY: 1, TIDZ: 2}
_BLOCK_AXES = {BIDX: 0, BIDY: 1, BIDZ: 2}


@dataclass(frozen=True)
class SafetyVerdict:
    """Outcome of the static safety proof for one kernel's transform."""

    safe: bool
    reasons: tuple[str, ...] = ()   # why the proof failed (empty when safe)

    @staticmethod
    def unsafe(*reasons: str) -> "SafetyVerdict":
        return SafetyVerdict(False, tuple(reasons))


@dataclass(frozen=True)
class LintFinding:
    """One ``catt lint`` finding with provenance."""

    code: str                  # CATT-{E,W}-* diagnostic code
    kernel: str
    message: str
    array: str | None = None
    loop_id: int | None = None
    line: int | None = None    # 1-based source line, when known
    # "error" | "warning" | "info"; derived from the code when not given,
    # so consumers never have to re-parse the code string.
    severity: str = ""

    def __post_init__(self) -> None:
        if not self.severity:
            object.__setattr__(self, "severity", {
                "E": "error", "W": "warning"}.get(
                    self.code.split("-")[1], "info"))

    def __str__(self) -> str:
        where = self.kernel
        if self.line is not None:
            where += f":{self.line}"
        if self.loop_id is not None:
            where += f" loop#{self.loop_id}"
        return f"[{self.code}] {where}: {self.message}"


# ---------------------------------------------------------------------------
# Value-range analysis over affine forms
# ---------------------------------------------------------------------------


def form_range(
    form: AffineForm,
    block_dim: tuple[int, int, int] | None,
    grid_dim: tuple[int, int, int] | None,
    trips: dict[str, int] | None = None,
) -> tuple[int, int] | None:
    """Inclusive [lo, hi] of ``form`` over every thread of every block.

    Thread symbols range over ``[0, blockDim-1]``, block symbols over
    ``[0, gridDim-1]``, loop iterators over ``[0, trips[name]-1]``.  Any
    other symbol (params, unknown iterators) or an irregular form defeats
    the range — returns None.
    """
    if form.irregular:
        return None
    lo = hi = form.const
    for sym, c in form.coeffs:
        if sym in _THREAD_AXES:
            if block_dim is None:
                return None
            span = block_dim[_THREAD_AXES[sym]] - 1
        elif sym in _BLOCK_AXES:
            if grid_dim is None:
                return None
            span = grid_dim[_BLOCK_AXES[sym]] - 1
        elif trips is not None and sym in trips:
            span = trips[sym] - 1
        else:
            return None
        if span < 0:
            span = 0
        if c >= 0:
            hi += c * span
        else:
            lo += c * span
    return lo, hi


def _sides(cond: Expr) -> tuple[Expr, Expr, str] | None:
    if isinstance(cond, BinOp) and cond.op in ("<", "<=", ">", ">=",
                                               "==", "!="):
        return cond.left, cond.right, cond.op
    return None


def cond_always_true(
    cond: Expr,
    env: SymbolicEnv,
    block_dim: tuple[int, int, int] | None,
    grid_dim: tuple[int, int, int] | None,
    trips: dict[str, int] | None = None,
) -> bool:
    """Prove ``cond`` holds for every thread of every launched block.

    Handles ``&&`` conjunctions of order comparisons whose ``left - right``
    range is conclusive; anything else is "not provable" (False).
    """
    if isinstance(cond, BinOp) and cond.op == "&&":
        return (cond_always_true(cond.left, env, block_dim, grid_dim, trips)
                and cond_always_true(cond.right, env, block_dim, grid_dim,
                                     trips))
    parts = _sides(cond)
    if parts is None:
        return False
    left, right, op = parts
    diff = analyze_expr(left, env) - analyze_expr(right, env)
    rng = form_range(diff, block_dim, grid_dim, trips)
    if rng is None:
        return False
    lo, hi = rng
    if op == "<":
        return hi < 0
    if op == "<=":
        return hi <= 0
    if op == ">":
        return lo > 0
    if op == ">=":
        return lo >= 0
    return False  # ==, != : no useful proof from a range


def cond_tb_uniform(cond: Expr, env: SymbolicEnv) -> bool:
    """True when every thread of a TB evaluates ``cond`` identically —
    i.e. no thread symbol (and nothing irregular) feeds the comparison."""
    for node in walk_expr(cond):
        if isinstance(node, (Assign,)):
            return False
    for side in _cond_leaves(cond):
        form = analyze_expr(side, env)
        if form.irregular:
            return False
        if any(sym in _THREAD_AXES for sym in form.symbols()):
            return False
    return True


def _cond_leaves(cond: Expr):
    """Comparison operands under a boolean combinator tree."""
    if isinstance(cond, BinOp) and cond.op in ("&&", "||"):
        yield from _cond_leaves(cond.left)
        yield from _cond_leaves(cond.right)
        return
    parts = _sides(cond)
    if parts is not None:
        yield parts[0]
        yield parts[1]
    else:
        yield cond


# ---------------------------------------------------------------------------
# Semantic legality of one warp split
# ---------------------------------------------------------------------------


def _iterator_trips(kernel_loops) -> dict[str, int]:
    """iterator name -> constant trip count (max on collisions; absent when
    any same-named loop has an unknown count)."""
    trips: dict[str, int] = {}
    unknown: set[str] = set()
    for rec in kernel_loops.loops:
        if rec.iterator is None:
            continue
        t = rec.trip_count()
        if t is None:
            unknown.add(rec.iterator)
        else:
            trips[rec.iterator] = max(trips.get(rec.iterator, 0), t)
    for name in unknown:
        trips.pop(name, None)
    return trips


def _guard_env(flow, cond: Expr,
               block_dim, grid_dim) -> SymbolicEnv:
    if flow is not None:
        env = flow.env_sites.get(id(cond))
        if env is not None:
            return env
    return SymbolicEnv(block_dim=block_dim, grid_dim=grid_dim)


def _shared_writes_in(stmt: Stmt, shared: set[str]) -> list[str]:
    out = []
    from ...frontend.ast_nodes import expressions_in

    for e in expressions_in(stmt):
        if isinstance(e, Assign) and isinstance(e.target, ArrayRef):
            base = e.target.base
            if isinstance(base, Ident) and base.name in shared:
                out.append(base.name)
    return out


def _thread_exclusive(accesses, trips: dict[str, int]) -> str | None:
    """Check that no two threads of a TB touch a common element through any
    of ``accesses`` (all referencing one written array).  Returns a reason
    string when the proof fails, None when exclusive.

    Proof obligation: with a common thread coefficient ``ct`` and identical
    block coefficients, thread ``t`` touches indexes inside
    ``[ct*t + lo, ct*t + hi]``; the intervals are pairwise disjoint iff
    ``hi - lo < |ct|``.
    """
    cts: set[int] = set()
    blocks: set[tuple] = set()
    spans: list[tuple[int, int]] = []
    for acc in accesses:
        form = acc.index
        if form.irregular:
            return "irregular index on a written array"
        lo = hi = form.const
        bcoeffs = {}
        for sym, c in form.coeffs:
            if sym == TIDX:
                continue
            if sym in (TIDY, TIDZ):
                return f"{sym} appears in a written index (2-D TB)"
            if sym in _BLOCK_AXES:
                bcoeffs[sym] = c
                continue
            if sym not in trips:
                return f"unbounded symbol {sym!r} in a written index"
            span = max(trips[sym] - 1, 0)
            if c >= 0:
                hi += c * span
            else:
                lo += c * span
        cts.add(form.coeff(TIDX) or 0)
        blocks.add(tuple(sorted(bcoeffs.items())))
        spans.append((lo, hi))
    if len(cts) != 1:
        return "accesses disagree on the thread coefficient"
    if len(blocks) != 1:
        return "accesses disagree on block coefficients"
    ct = abs(next(iter(cts)))
    if ct == 0:
        return "thread coefficient is 0 (every thread hits the same element)"
    lo = min(s[0] for s in spans)
    hi = max(s[1] for s in spans)
    if hi - lo >= ct:
        return (f"per-thread index span {hi - lo} is not covered by the "
                f"thread stride {ct}")
    return None


def verify_warp_split(analysis, la) -> SafetyVerdict:
    """Prove that splitting loop ``la`` into warp groups preserves semantics.

    ``analysis`` is a :class:`~repro.analysis.kernel_info.KernelAnalysis`;
    ``la`` one of its :class:`LoopAnalysis` entries.
    """
    rec = la.record
    kernel = analysis.kernel
    kl = analysis.kernel_loops
    flow = getattr(kl, "flow", None)
    block_dim = analysis.block_dim
    grid_dim = getattr(flow, "grid_dim", None) if flow is not None else None
    trips = _iterator_trips(kl)
    reasons: list[str] = []

    # 1. No barrier inside the region being serialized.
    if rec.contains_sync:
        reasons.append("loop contains __syncthreads()")

    # 2. Enclosing guards must be warp-convergent for the barrier the split
    #    inserts after each group: TB-uniform, or provably always true.
    path = path_to_stmt(kernel.body, rec.stmt)
    if path is None:
        reasons.append("loop statement not found in the kernel body")
        path = ()
    for node, child in zip(path, path[1:]):
        if not isinstance(node, IfStmt):
            continue
        env = _guard_env(flow, node.cond, block_dim, grid_dim)
        if child is node.otherwise:
            # else-branch: a range proof of the *negation* is not attempted.
            if not cond_tb_uniform(node.cond, env):
                reasons.append("loop guarded by the else-branch of a "
                               "thread-dependent condition")
            continue
        if cond_tb_uniform(node.cond, env):
            continue
        if cond_always_true(node.cond, env, block_dim, grid_dim, trips):
            continue
        reasons.append("enclosing guard is thread-dependent and not "
                       "provably true for the launch")

    # Checks 3 and 4 guard against intra-TB cross-thread communication
    # through memory; a PROVED-SAFE race verdict on every barrier interval
    # of an array is a stronger proof of the same property (warp splitting
    # only reorders execution within a TB), so it subsumes both.
    safe_global, safe_shared = _race_safe_arrays(analysis)

    # 3. Written global arrays must be thread-exclusive.
    by_array: dict[str, list] = {}
    for acc in rec.unique_accesses():
        by_array.setdefault(acc.array, []).append(acc)
    for array, accs in sorted(by_array.items()):
        if not any(a.is_write for a in accs):
            continue
        if array in safe_global:
            continue
        why = _thread_exclusive(accs, trips)
        if why is not None:
            reasons.append(f"array {array!r}: {why}")

    # 4. No shared-memory writes inside the loop (cross-warp channel).
    for name in sorted(set(_shared_writes_in(rec.stmt, kl.shared_arrays))):
        if name in safe_shared:
            continue
        reasons.append(f"loop writes __shared__ array {name!r}")

    return SafetyVerdict(not reasons, tuple(reasons))


def _race_safe_arrays(analysis) -> tuple[set[str], set[str]]:
    """(global, shared) arrays every one of whose (array, interval) race
    verdicts is PROVED-SAFE — no two threads of a TB can touch a common
    element between barriers anywhere in the kernel."""
    try:
        from .races import analyze_races

        report = analyze_races(analysis)
    except Exception:
        return set(), set()
    return report.safe_arrays("global"), report.safe_arrays("shared")


# ---------------------------------------------------------------------------
# Structural translation validation (Fig. 4 / Fig. 5 shape)
# ---------------------------------------------------------------------------


def _expected_guard(wid: Expr, lo: int, hi: int) -> Expr:
    return BinOp("&&", BinOp(">=", wid, IntLit(lo)),
                 BinOp("<", wid, IntLit(hi)))


def _match_pieces(orig: Stmt, pieces: tuple[Stmt, ...], n: int,
                  warps_per_tb: int, wid: Expr) -> bool:
    """``pieces`` must be the Fig. 4 expansion of ``orig`` for factor n."""
    if n <= 1 or warps_per_tb % n != 0 or len(pieces) != 2 * n:
        return False
    group = warps_per_tb // n
    for g in range(n):
        guard, sync = pieces[2 * g], pieces[2 * g + 1]
        if not isinstance(guard, IfStmt) or guard.otherwise is not None:
            return False
        if guard.cond != _expected_guard(wid, g * group, (g + 1) * group):
            return False
        body = guard.then
        if not (isinstance(body, Block) and len(body.statements) == 1
                and body.statements[0] is orig):
            return False
        if not isinstance(sync, SyncthreadsStmt):
            return False
    return True


def _match_stmt(orig: Stmt, trans: Stmt, splits: dict[int, int],
                warps_per_tb: int, wid: Expr) -> bool:
    if id(orig) in splits:
        # replace_stmt wraps the spliced pieces when the target was not a
        # direct Block member.
        return (isinstance(trans, Block)
                and _match_pieces(orig, trans.statements, splits[id(orig)],
                                  warps_per_tb, wid))
    if trans is orig:
        return True
    if isinstance(orig, Block) and isinstance(trans, Block):
        return _match_stmts(orig.statements, trans.statements, splits,
                            warps_per_tb, wid)
    if isinstance(orig, IfStmt) and isinstance(trans, IfStmt):
        if orig.cond != trans.cond:
            return False
        if (orig.otherwise is None) != (trans.otherwise is None):
            return False
        if not _match_stmt(orig.then, trans.then, splits, warps_per_tb, wid):
            return False
        return orig.otherwise is None or _match_stmt(
            orig.otherwise, trans.otherwise, splits, warps_per_tb, wid)
    if isinstance(orig, ForStmt) and isinstance(trans, ForStmt):
        return (orig.init == trans.init and orig.cond == trans.cond
                and orig.step == trans.step
                and _match_stmt(orig.body, trans.body, splits,
                                warps_per_tb, wid))
    if isinstance(orig, WhileStmt) and isinstance(trans, WhileStmt):
        return orig.cond == trans.cond and _match_stmt(
            orig.body, trans.body, splits, warps_per_tb, wid)
    if isinstance(orig, DoWhileStmt) and isinstance(trans, DoWhileStmt):
        return orig.cond == trans.cond and _match_stmt(
            orig.body, trans.body, splits, warps_per_tb, wid)
    return orig == trans


def _match_stmts(orig: tuple[Stmt, ...], trans: tuple[Stmt, ...],
                 splits: dict[int, int], warps_per_tb: int,
                 wid: Expr) -> bool:
    j = 0
    for o in orig:
        n = splits.get(id(o))
        if n is not None:
            if j + 2 * n > len(trans):
                return False
            if not _match_pieces(o, tuple(trans[j:j + 2 * n]), n,
                                 warps_per_tb, wid):
                return False
            j += 2 * n
            continue
        if j >= len(trans):
            return False
        if not _match_stmt(o, trans[j], splits, warps_per_tb, wid):
            return False
        j += 1
    return j == len(trans)


def _is_dummy_prologue(stmts: tuple[Stmt, ...]) -> bool:
    from ...transform.tb_throttle import DUMMY_NAME

    if len(stmts) < 2:
        return False
    decl, init = stmts[0], stmts[1]
    if not (isinstance(decl, DeclStmt) and decl.is_shared
            and len(decl.declarators) == 1
            and decl.declarators[0].name == DUMMY_NAME):
        return False
    if not (isinstance(init, ExprStmt) and isinstance(init.expr, Assign)
            and isinstance(init.expr.target, ArrayRef)
            and isinstance(init.expr.target.base, Ident)
            and init.expr.target.base.name == DUMMY_NAME):
        return False
    return True


def split_shape_matches(
    original: FunctionDef,
    transformed: FunctionDef,
    splits: dict[int, int],
    warps_per_tb: int,
    block_dim: tuple[int, int, int],
    expect_dummy: bool = False,
    warp_size: int = 32,
) -> bool:
    """Translation-validate the emitted kernel against the Fig. 4/5 shape.

    ``splits`` maps ``id(loop_stmt)`` (objects from ``original``) to the
    split factor.  Matching is structural and implementation-independent:
    every non-split statement must be the identical (shared) subtree or an
    equal spine rebuild, and every split loop must appear exactly as ``n``
    guarded copies of the *original loop object* with barriers between the
    groups, the guards partitioning ``[0, warps_per_tb)``.
    """
    from ...transform.utils import linear_warp_id_expr

    wid = linear_warp_id_expr(block_dim, warp_size)
    trans_stmts = transformed.body.statements
    if expect_dummy:
        if not _is_dummy_prologue(trans_stmts):
            return False
        trans_stmts = trans_stmts[2:]
    elif _is_dummy_prologue(trans_stmts):
        return False  # an unexpected prologue is not the claimed shape
    return _match_stmts(original.body.statements, trans_stmts, splits,
                        warps_per_tb, wid)


def verify_transform_static(analysis, record,
                            original: FunctionDef,
                            transformed: FunctionDef) -> SafetyVerdict:
    """Full static proof for one kernel's transform record.

    ``record`` is the pipeline's ``KernelTransform``: warp splits are proven
    semantically (per loop) and the emitted kernel is translation-validated
    structurally; the Fig. 5 dummy-shared array is dead weight by
    construction.  Reduction tiling restructures loop bodies and carries no
    static proof — its presence defers to the dynamic gate.
    """
    if record.tiles:
        return SafetyVerdict.unsafe(
            "reduction tiling applied (no static proof)")
    reasons: list[str] = []
    splits: dict[int, int] = {}
    for loop_id, n in record.warp_splits:
        la = analysis.loop(loop_id)
        splits[id(la.record.stmt)] = n
        verdict = verify_warp_split(analysis, la)
        for why in verdict.reasons:
            reasons.append(f"loop #{loop_id}: {why}")
    if not split_shape_matches(
        original, transformed, splits,
        analysis.occupancy.warps_per_tb, analysis.block_dim,
        expect_dummy=record.tb_plan is not None,
    ):
        reasons.append("emitted kernel does not match the Fig. 4/5 shape")
    return SafetyVerdict(not reasons, tuple(reasons))


# ---------------------------------------------------------------------------
# Lint findings (shared by `catt lint` and the analysis report)
# ---------------------------------------------------------------------------


def _line_of(loc) -> int | None:
    return getattr(loc, "line", None)


def findings_for_analysis(analysis) -> list[LintFinding]:
    """Per-access and whole-kernel findings for one analyzed launch."""
    from ...transform.diagnostics import (
        E_DIVERGENT_BARRIER,
        W_IRREGULAR_INDEX,
        W_UNCOALESCED,
    )

    name = analysis.kernel.name
    out: list[LintFinding] = []
    seen: set[tuple] = set()
    for la in analysis.loops:
        for af in la.footprint.per_access:
            acc = af.locality.access
            if acc.loop_id != la.record.loop_id:
                continue  # report each access under its innermost loop only
            key = (acc.array, acc.key(), _line_of(acc.loc))
            if key in seen:
                continue
            seen.add(key)
            if acc.index.irregular:
                out.append(LintFinding(
                    W_IRREGULAR_INDEX, name,
                    f"data-dependent index into {acc.array!r}; conservative "
                    f"C_tid=1 assumed",
                    array=acc.array, loop_id=la.record.loop_id,
                    line=_line_of(acc.loc)))
            elif af.req_warp >= 32:
                out.append(LintFinding(
                    W_UNCOALESCED, name,
                    f"reference to {acc.array!r} is fully diverged "
                    f"(REQ_warp={af.req_warp})",
                    array=acc.array, loop_id=la.record.loop_id,
                    line=_line_of(acc.loc)))
    out.extend(_barrier_findings(analysis, E_DIVERGENT_BARRIER))
    out.extend(_race_findings(analysis))
    return out


def _barrier_findings(analysis, code: str) -> list[LintFinding]:
    kernel = analysis.kernel
    kl = analysis.kernel_loops
    flow = getattr(kl, "flow", None)
    block_dim = analysis.block_dim
    grid_dim = getattr(flow, "grid_dim", None) if flow is not None else None
    trips = _iterator_trips(kl)
    recs_by_stmt = {id(r.stmt): r for r in kl.loops}
    out: list[LintFinding] = []
    for stmt in statements_in(kernel.body):
        if not isinstance(stmt, SyncthreadsStmt):
            continue
        path = path_to_stmt(kernel.body, stmt) or ()
        for node, child in zip(path, path[1:]):
            if isinstance(node, IfStmt):
                env = _guard_env(flow, node.cond, block_dim, grid_dim)
                if cond_tb_uniform(node.cond, env):
                    continue
                if child is node.then and cond_always_true(
                        node.cond, env, block_dim, grid_dim, trips):
                    continue
                out.append(LintFinding(
                    code, kernel.name,
                    "__syncthreads() under a thread-dependent guard",
                    line=_line_of(stmt.loc)))
                break
            rec = recs_by_stmt.get(id(node))
            if rec is not None and rec.bound is not None:
                tid_dep = rec.bound.irregular or any(
                    s in _THREAD_AXES for s in rec.bound.symbols())
                if tid_dep:
                    out.append(LintFinding(
                        code, kernel.name,
                        "__syncthreads() inside a loop with a "
                        "thread-dependent trip count",
                        loop_id=rec.loop_id, line=_line_of(stmt.loc)))
                    break
    return out


def _race_findings(analysis) -> list[LintFinding]:
    """Shared-memory race verdicts from the barrier-interval MHP analysis
    (:mod:`repro.analysis.dataflow.races`): a ``PROVED-RACE`` region is an
    error, an ``UNKNOWN`` one a warning.  This replaces the old source-order
    epoch heuristic, whose single global counter separated accesses that a
    barrier inside a loop body actually leaves concurrent."""
    from ...transform.diagnostics import E_PROVED_RACE, W_RACE_UNKNOWN
    from .races import PROVED_RACE, UNKNOWN, analyze_races

    if not analysis.kernel_loops.shared_arrays:
        return []
    try:
        report = analyze_races(analysis)
    except Exception:
        return []
    out: list[LintFinding] = []
    for v in report.for_space("shared"):
        line = v.lines[0] if v.lines else None
        if v.verdict == PROVED_RACE:
            out.append(LintFinding(
                E_PROVED_RACE, analysis.kernel.name,
                f"__shared__ array {v.array!r} provably races in barrier "
                f"interval #{v.interval}: {v.reason}",
                array=v.array, line=line))
        elif v.verdict == UNKNOWN:
            out.append(LintFinding(
                W_RACE_UNKNOWN, analysis.kernel.name,
                f"__shared__ array {v.array!r} unclassified in barrier "
                f"interval #{v.interval}: {v.reason}",
                array=v.array, line=line))
    return out
