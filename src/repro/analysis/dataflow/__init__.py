"""Forward dataflow framework over the frontend AST.

Three clients (the tentpole of the dataflow milestone):

* :mod:`.affineprop` — constant & affine-form propagation plus
  induction-variable recognition, feeding precise Eq. 5 index forms into
  :func:`repro.analysis.loops.find_loops`;
* :mod:`.safety` — the static transform-safety verifier behind
  ``catt lint`` and the pipeline's static validation pre-gate;
* :mod:`.homogeneity` — the block-homogeneity query that gates the
  simulator's widened-block dedup (:mod:`repro.sim.replay`).

:mod:`.cfg` and :mod:`.solver` are the shared framework underneath.
"""

from .affineprop import AffineFlow, FlowEnv, LoopMeta, PtrState, ptr_state_of
from .cfg import CFG, BasicBlock, CFGLoop, build_cfg
from .homogeneity import (
    HomogeneityReport,
    block_homogeneity,
    clear_homogeneity_cache,
)
from .solver import solve_forward

__all__ = [
    "AffineFlow",
    "FlowEnv",
    "LoopMeta",
    "PtrState",
    "ptr_state_of",
    "CFG",
    "BasicBlock",
    "CFGLoop",
    "build_cfg",
    "solve_forward",
    "HomogeneityReport",
    "block_homogeneity",
    "clear_homogeneity_cache",
]
