"""Control-flow graph over the frontend AST.

Lowers a kernel body (``Block``/``IfStmt``/``ForStmt``/``WhileStmt``/
``DoWhileStmt``/``BreakStmt``/``ContinueStmt``/``ReturnStmt``) into basic
blocks of straight-line *actions*.  An action is one side-effecting step the
dataflow transfer function interprets:

    ``decl``  a DeclStmt (bindings enter the environment)
    ``eval``  one expression evaluation (ExprStmt exprs, branch/loop
              conditions, for-steps, return values)
    ``sync``  a ``__syncthreads()``

Loops keep their source-level identity: each lowered loop is registered as a
:class:`CFGLoop` carrying its AST statement, preheader/header/exit block ids
and member-block set, in the same pre-order that
:mod:`repro.analysis.loops` assigns ``loop_id``s.  The solver uses the
preheader/header pair to pin induction variables to closed forms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...frontend.ast_nodes import (
    Block,
    BreakStmt,
    ContinueStmt,
    DeclStmt,
    DoWhileStmt,
    EmptyStmt,
    Expr,
    ExprStmt,
    ForStmt,
    IfStmt,
    ReturnStmt,
    Stmt,
    SyncthreadsStmt,
    WhileStmt,
)

DECL, EVAL, SYNC = "decl", "eval", "sync"


@dataclass(frozen=True)
class Action:
    """One straight-line step inside a basic block."""

    kind: str                 # DECL | EVAL | SYNC
    node: object              # DeclStmt | Expr | SyncthreadsStmt


@dataclass
class BasicBlock:
    id: int
    actions: list[Action] = field(default_factory=list)
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)


@dataclass
class CFGLoop:
    """A source loop with its CFG anatomy.

    ``preheader`` is the block ending in the entry edge (for ``for`` loops it
    holds the lowered init), ``header`` the back-edge target (condition block
    for ``for``/``while``, body entry for ``do``-``while``), ``exit`` the
    unique block reached on termination or ``break``.
    """

    stmt: Stmt
    kind: str                  # "for" | "while" | "dowhile"
    preheader: int
    header: int
    exit: int
    blocks: frozenset[int] = frozenset()


@dataclass
class CFG:
    blocks: list[BasicBlock]
    entry: int
    exit: int
    loops: list[CFGLoop]       # source pre-order (matches loops.py loop_ids)

    def rpo(self) -> list[int]:
        """Reverse postorder over reachable blocks, then any unreachable
        (dead-code) blocks in id order so their actions still get visited."""
        seen: set[int] = set()
        post: list[int] = []

        def dfs(b: int) -> None:
            seen.add(b)
            for s in self.blocks[b].succs:
                if s not in seen:
                    dfs(s)
            post.append(b)

        dfs(self.entry)
        order = list(reversed(post))
        order.extend(b.id for b in self.blocks if b.id not in seen)
        return order


class _Builder:
    def __init__(self) -> None:
        self.blocks: list[BasicBlock] = []
        self.loops: list[CFGLoop] = []
        self.exit_block = None  # set by build_cfg

    def new_block(self) -> BasicBlock:
        b = BasicBlock(id=len(self.blocks))
        self.blocks.append(b)
        return b

    def edge(self, a: BasicBlock, b: BasicBlock) -> None:
        a.succs.append(b.id)
        b.preds.append(a.id)

    # -- statement lowering ------------------------------------------------
    def lower(self, stmt: Stmt, cur: BasicBlock,
              brk: BasicBlock | None, cont: BasicBlock | None):
        """Lower ``stmt`` starting in ``cur``; return the fallthrough block,
        or None when control never falls through (return/break/continue)."""
        if isinstance(stmt, Block):
            for s in stmt.statements:
                if cur is None:
                    cur = self.new_block()  # dead code: pred-less block
                cur = self.lower(s, cur, brk, cont)
            return cur
        if isinstance(stmt, DeclStmt):
            cur.actions.append(Action(DECL, stmt))
            return cur
        if isinstance(stmt, ExprStmt):
            cur.actions.append(Action(EVAL, stmt.expr))
            return cur
        if isinstance(stmt, SyncthreadsStmt):
            cur.actions.append(Action(SYNC, stmt))
            return cur
        if isinstance(stmt, IfStmt):
            return self._lower_if(stmt, cur, brk, cont)
        if isinstance(stmt, ForStmt):
            return self._lower_for(stmt, cur, brk, cont)
        if isinstance(stmt, WhileStmt):
            return self._lower_while(stmt, cur, brk, cont)
        if isinstance(stmt, DoWhileStmt):
            return self._lower_dowhile(stmt, cur, brk, cont)
        if isinstance(stmt, ReturnStmt):
            if stmt.value is not None:
                cur.actions.append(Action(EVAL, stmt.value))
            self.edge(cur, self.exit_block)
            return None
        if isinstance(stmt, BreakStmt):
            if brk is not None:
                self.edge(cur, brk)
            return None
        if isinstance(stmt, ContinueStmt):
            if cont is not None:
                self.edge(cur, cont)
            return None
        if isinstance(stmt, EmptyStmt):
            return cur
        return cur  # unknown statement kinds: no control effect

    def _lower_if(self, stmt: IfStmt, cur, brk, cont):
        cur.actions.append(Action(EVAL, stmt.cond))
        then_b = self.new_block()
        self.edge(cur, then_b)
        t_end = self.lower(stmt.then, then_b, brk, cont)
        e_end = None
        if stmt.otherwise is not None:
            else_b = self.new_block()
            self.edge(cur, else_b)
            e_end = self.lower(stmt.otherwise, else_b, brk, cont)
        join = self.new_block()
        if stmt.otherwise is None:
            self.edge(cur, join)          # cond-false fallthrough
        for end in (t_end, e_end):
            if end is not None:
                self.edge(end, join)
        return join

    def _lower_for(self, stmt: ForStmt, cur, brk, cont):
        if stmt.init is not None:
            cur = self.lower(stmt.init, cur, brk, cont)
        preheader = cur
        mark = len(self.blocks)
        header = self.new_block()
        self.edge(preheader, header)
        if stmt.cond is not None:
            header.actions.append(Action(EVAL, stmt.cond))
        exit_b = self.new_block()
        self.edge(header, exit_b)
        loop = CFGLoop(stmt, "for", preheader.id, header.id, exit_b.id)
        slot = len(self.loops)
        self.loops.append(loop)
        body_b = self.new_block()
        self.edge(header, body_b)
        step_b = self.new_block()
        b_end = self.lower(stmt.body, body_b, brk=exit_b, cont=step_b)
        if b_end is not None:
            self.edge(b_end, step_b)
        if stmt.step is not None:
            step_b.actions.append(Action(EVAL, stmt.step))
        self.edge(step_b, header)
        loop.blocks = frozenset(range(mark, len(self.blocks))) - {exit_b.id}
        self.loops[slot] = loop
        return exit_b

    def _lower_while(self, stmt: WhileStmt, cur, brk, cont):
        preheader = cur
        mark = len(self.blocks)
        header = self.new_block()
        self.edge(preheader, header)
        header.actions.append(Action(EVAL, stmt.cond))
        exit_b = self.new_block()
        self.edge(header, exit_b)
        loop = CFGLoop(stmt, "while", preheader.id, header.id, exit_b.id)
        slot = len(self.loops)
        self.loops.append(loop)
        body_b = self.new_block()
        self.edge(header, body_b)
        b_end = self.lower(stmt.body, body_b, brk=exit_b, cont=header)
        if b_end is not None:
            self.edge(b_end, header)
        loop.blocks = frozenset(range(mark, len(self.blocks))) - {exit_b.id}
        self.loops[slot] = loop
        return exit_b

    def _lower_dowhile(self, stmt: DoWhileStmt, cur, brk, cont):
        preheader = cur
        mark = len(self.blocks)
        header = self.new_block()          # body entry = back-edge target
        self.edge(preheader, header)
        exit_b = self.new_block()
        cond_b = self.new_block()
        cond_b.actions.append(Action(EVAL, stmt.cond))
        loop = CFGLoop(stmt, "dowhile", preheader.id, header.id, exit_b.id)
        slot = len(self.loops)
        self.loops.append(loop)
        b_end = self.lower(stmt.body, header, brk=exit_b, cont=cond_b)
        if b_end is not None:
            self.edge(b_end, cond_b)
        self.edge(cond_b, header)
        self.edge(cond_b, exit_b)
        loop.blocks = frozenset(range(mark, len(self.blocks))) - {exit_b.id}
        self.loops[slot] = loop
        return exit_b


def build_cfg(body: Block) -> CFG:
    """Lower a kernel body into a :class:`CFG`."""
    b = _Builder()
    entry = b.new_block()
    b.exit_block = b.new_block()
    end = b.lower(body, entry, brk=None, cont=None)
    if end is not None:
        b.edge(end, b.exit_block)
    return CFG(blocks=b.blocks, entry=entry.id, exit=b.exit_block.id,
               loops=b.loops)
