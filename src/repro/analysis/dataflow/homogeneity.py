"""Block-homogeneity query: may a launch be deduplicated across TBs?

:mod:`repro.sim.replay` executes all thread blocks of a launch in lockstep
(one widened warp per warp slot) and replays per-TB event streams into the
timing engine.  That is functionally and timing-wise *bit-identical* to
per-TB execution exactly when no thread ever observes a value written by a
**different thread** during the kernel — then every lane's values, masks and
addresses are independent of inter-thread scheduling, so lockstep execution
reproduces them exactly.

This module proves that property statically from the PR-2 dataflow framework
(:class:`~repro.analysis.dataflow.affineprop.AffineFlow`):

* every **store** address is affine in ``threadIdx``/``blockIdx``/loop
  iterators and provably **thread-disjoint** (a mixed-radix injectivity
  check over the launch box, with loop-iterator terms folded into a slack
  band), and all stores to a root share one index shape;
* every **load** either targets a root that is never stored, or has exactly
  the store's index shape (the accumulate pattern ``acc[i] op= ...`` —
  own-thread data);
* no atomics, no ``__device__`` calls (their effects are invisible to the
  per-site analysis); ``__syncthreads`` is fine — with no cross-thread data
  flow a barrier is timing-only.

Data-dependent *control flow* and data-dependent loads from read-only arrays
are allowed: lockstep equality of lane values makes the masks and gather
addresses identical by induction.  GEMM/ATAX/MVT-style kernels qualify;
BFS-style kernels that scatter through loaded indices do not.

The tape engine (:mod:`repro.sim.tape`) generalizes the same idea: it
carries *every* resident slot of a launch along a batch axis with per-slot
divergence masks, so dedup becomes the degenerate case where homogeneity
lets the batch axis collapse to a single representative TB.  This query
stays relevant as the cheap static certificate for that collapse under the
compiled engine (``dedup=True``).
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass

from ...frontend.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Block,
    Call,
    CType,
    DeclStmt,
    BoolLit,
    DoWhileStmt,
    Expr,
    ExprStmt,
    FloatLit,
    ForStmt,
    FunctionDef,
    Ident,
    IfStmt,
    IntLit,
    PostIncDec,
    ReturnStmt,
    Stmt,
    UnaryOp,
    WhileStmt,
    children_of_expr,
    expressions_in,
    statements_in,
    walk_expr,
)
from ..affine import (
    BIDX,
    BIDY,
    BIDZ,
    TIDX,
    TIDY,
    TIDZ,
    AffineForm,
    analyze_expr,
)
from .affineprop import AffineFlow, LoopMeta, ptr_state_of

Dim3 = tuple[int, int, int]


@dataclass(frozen=True)
class HomogeneityReport:
    """Verdict for one (kernel, grid, block, args) launch."""

    eligible: bool
    reasons: tuple[str, ...] = ()

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.eligible


@dataclass(frozen=True)
class _Access:
    root: str                 # "ptr:<param>" | "shared:<name>" | "?"
    is_store: bool
    form: AffineForm | None   # None = irregular address
    ctx: tuple                # enclosing loop/guard chain, outermost first
    # Store of a compile-time literal ("x[...] = 0").  If the root is never
    # loaded, such stores cannot carry cross-thread data and write-write
    # overlap deposits identical bytes — so they are exempt from the
    # disjointness rules (the CATT dummy-shared keep-alive write pattern).
    const_value: bool = False


@dataclass
class _Structure:
    reasons: list[str]
    accesses: list[_Access]
    ptr_params: tuple[str, ...]


# Keyed on kernel identity (FunctionDef hashing would walk the whole tree);
# the value keeps a strong reference so ids cannot be recycled while cached.
_STRUCT_CACHE: "OrderedDict[tuple, tuple[FunctionDef, _Structure]]" = \
    OrderedDict()
_CACHE_LIMIT = 128


def _pure_call_names() -> frozenset:
    # Runtime import: analysis must not import the simulator at module load.
    from ...sim.interp import _BINARY_MATH, _UNARY_MATH

    return frozenset(_UNARY_MATH) | frozenset(_BINARY_MATH)


class _ArgFlow(AffineFlow):
    """AffineFlow with integer scalar launch args pinned as constants.

    Address expressions like ``i * nj + j`` are only affine once ``nj`` is a
    known constant — as a free ``param:nj`` symbol the product is non-linear
    and the whole form would go irregular.
    """

    def __init__(self, kernel: FunctionDef, block: Dim3, grid: Dim3,
                 scalars: tuple[tuple[str, int], ...]):
        self._scalar_args = scalars
        super().__init__(kernel, block, grid)

    def _initial(self):
        env = super()._initial()
        for name, value in self._scalar_args:
            env.bind(name, AffineForm.constant(value))
        return env


# ---------------------------------------------------------------------------
# Structural collection (cached per kernel/launch-geometry)
# ---------------------------------------------------------------------------


def _shared_dims(kernel: FunctionDef) -> dict[str, tuple]:
    dims: dict[str, tuple] = {}
    for stmt in statements_in(kernel.body):
        if isinstance(stmt, DeclStmt) and stmt.is_shared:
            for d in stmt.declarators:
                # Dynamic arrays are 1-D with launch-sized extent: stride 1.
                dims[d.name] = (None,) if d.dynamic else tuple(d.array_sizes)
    return dims


def _local_arrays(kernel: FunctionDef) -> set[str]:
    names: set[str] = set()
    for stmt in statements_in(kernel.body):
        if isinstance(stmt, DeclStmt) and not stmt.is_shared:
            for d in stmt.declarators:
                if d.array_sizes:
                    names.add(d.name)
    return names


def _guard_constraints(cond: Expr, env) -> list[tuple]:
    """Affine facts a then-branch may assume: ``("lt", form, bound)`` for
    ``form < bound`` and ``("eq", form, value)``, bounds constant."""
    out: list[tuple] = []
    if env is None:
        return out

    def visit(c: Expr) -> None:
        if isinstance(c, BinOp) and c.op == "&&":
            visit(c.left)
            visit(c.right)
            return
        if not isinstance(c, BinOp) or c.op not in ("<", "<=", ">", ">=",
                                                    "=="):
            return
        left = analyze_expr(c.left, env)
        right = analyze_expr(c.right, env)
        if left.irregular or right.irregular:
            return
        if c.op == "==":
            if right.is_constant and not left.is_constant:
                out.append(("eq", left, right.const))
            elif left.is_constant and not right.is_constant:
                out.append(("eq", right, left.const))
            return
        op = c.op
        if op in (">", ">="):
            left, right = right, left
            op = "<" if op == ">" else "<="
        if right.is_constant and not left.is_constant:
            out.append(("lt", left, right.const + (1 if op == "<=" else 0)))

    visit(cond)
    return out


def _strides(dims: tuple) -> list[int]:
    strides: list[int] = []
    acc = 1
    for d in reversed(dims):
        strides.append(acc)
        acc *= d if d is not None else 1
    return list(reversed(strides))


def _collect(kernel: FunctionDef, block: Dim3, grid: Dim3,
             scalars: tuple[tuple[str, int], ...]) -> _Structure:
    st = _Structure([], [], tuple(
        p.name for p in kernel.params if p.type.is_pointer))
    pure = _pure_call_names()
    for node in expressions_in(kernel.body):
        if isinstance(node, Call):
            if node.func == "atomicAdd":
                st.reasons.append("atomicAdd (cross-thread RMW)")
            elif node.func not in pure:
                st.reasons.append(
                    f"call to {node.func!r} (effects not analyzable)")
    if st.reasons:
        return st

    try:
        flow = _ArgFlow(kernel, block, grid, scalars)
    except Exception as exc:  # pragma: no cover - defensive
        st.reasons.append(f"dataflow analysis failed: {exc!r}")
        return st

    shared = _shared_dims(kernel)
    locals_ = _local_arrays(kernel)
    # Entries: ("loop", LoopMeta | None) or ("guard", op, form, bound).
    ctx: list[tuple] = []

    def env_of(expr: Expr):
        env = flow.env_sites.get(id(expr))
        if env is None and any(
            isinstance(n, (ArrayRef, UnaryOp)) for n in walk_expr(expr)
        ):
            st.reasons.append("no dataflow snapshot for a memory access site")
        return env

    def record(ref: ArrayRef, env, store: bool,
               const_value: bool = False) -> None:
        indices: list[Expr] = []
        node: Expr = ref
        while isinstance(node, ArrayRef):
            indices.append(node.index)
            node = node.base
        indices.reverse()
        for ie in indices:
            scan_expr(ie, env)
        if not isinstance(node, Ident):
            scan_expr(node, env)
        if isinstance(node, Ident) and node.name in locals_:
            return  # per-thread private storage
        if isinstance(node, Ident) and node.name in shared:
            dims = shared[node.name]
            if len(indices) != len(dims):
                st.accesses.append(_Access(
                    f"shared:{node.name}", store, None, tuple(ctx),
                    const_value))
                return
            form = AffineForm.constant(0)
            for ie, stride in zip(indices, _strides(dims)):
                form = form + analyze_expr(ie, env) * AffineForm.constant(
                    stride)
            st.accesses.append(_Access(
                f"shared:{node.name}", store,
                None if form.irregular else form, tuple(ctx), const_value))
            return
        ps = ptr_state_of(node, env)
        if ps is None or ps.root is None:
            st.accesses.append(
                _Access("?", store, None, tuple(ctx), const_value))
            return
        if len(indices) != 1:
            st.accesses.append(_Access(
                f"ptr:{ps.root}", store, None, tuple(ctx), const_value))
            return
        form = ps.offset + analyze_expr(indices[0], env)
        st.accesses.append(_Access(
            f"ptr:{ps.root}", store, None if form.irregular else form,
            tuple(ctx), const_value))

    def record_deref(ptr_expr: Expr, env, store: bool,
                     const_value: bool = False) -> None:
        ps = ptr_state_of(ptr_expr, env)
        if ps is None or ps.root is None:
            st.accesses.append(
                _Access("?", store, None, tuple(ctx), const_value))
            return
        st.accesses.append(_Access(
            f"ptr:{ps.root}", store,
            None if ps.offset.irregular else ps.offset, tuple(ctx),
            const_value))

    def scan_expr(expr: Expr, env) -> None:
        if env is None:
            return
        if isinstance(expr, Assign):
            t = expr.target
            literal = expr.op == "=" and isinstance(
                expr.value, (IntLit, FloatLit, BoolLit))
            if isinstance(t, ArrayRef):
                record(t, env, store=True, const_value=literal)
                if expr.op != "=":
                    record(t, env, store=False)
            elif isinstance(t, UnaryOp) and t.op == "*":
                record_deref(t.operand, env, store=True, const_value=literal)
                if expr.op != "=":
                    record_deref(t.operand, env, store=False)
                scan_expr(t.operand, env)
            scan_expr(expr.value, env)
            return
        if isinstance(expr, PostIncDec) or (
            isinstance(expr, UnaryOp) and expr.op in ("++", "--")
        ):
            op = expr.operand
            if isinstance(op, ArrayRef):
                record(op, env, store=False)
                record(op, env, store=True)
            elif isinstance(op, UnaryOp) and op.op == "*":
                record_deref(op.operand, env, store=False)
                record_deref(op.operand, env, store=True)
                scan_expr(op.operand, env)
            return
        if isinstance(expr, UnaryOp) and expr.op == "*":
            record_deref(expr.operand, env, store=False)
            scan_expr(expr.operand, env)
            return
        if isinstance(expr, ArrayRef):
            record(expr, env, store=False)
            return
        for child in children_of_expr(expr):
            scan_expr(child, env)

    def scan_site(expr: Expr | None) -> None:
        if expr is not None:
            scan_expr(expr, env_of(expr))

    def scan_stmt(stmt: Stmt) -> None:
        if isinstance(stmt, Block):
            for s in stmt.statements:
                scan_stmt(s)
        elif isinstance(stmt, ExprStmt):
            scan_site(stmt.expr)
        elif isinstance(stmt, DeclStmt):
            for d in stmt.declarators:
                scan_site(d.init)
        elif isinstance(stmt, IfStmt):
            scan_site(stmt.cond)
            guards = _guard_constraints(
                stmt.cond, flow.env_sites.get(id(stmt.cond)))
            for g in guards:
                ctx.append(("guard",) + g)
            scan_stmt(stmt.then)
            for _ in guards:
                ctx.pop()
            if stmt.otherwise is not None:
                scan_stmt(stmt.otherwise)
        elif isinstance(stmt, ForStmt):
            if stmt.init is not None:
                scan_stmt(stmt.init)
            meta = flow.loop_meta.get(id(stmt))
            ctx.append(("loop", meta))
            scan_site(stmt.cond)
            scan_site(stmt.step)
            scan_stmt(stmt.body)
            ctx.pop()
        elif isinstance(stmt, (WhileStmt, DoWhileStmt)):
            meta = flow.loop_meta.get(id(stmt))
            ctx.append(("loop", meta))
            scan_site(stmt.cond)
            scan_stmt(stmt.body)
            ctx.pop()
        elif isinstance(stmt, ReturnStmt):
            scan_site(stmt.value)

    scan_stmt(kernel.body)
    return st


def _structure(kernel: FunctionDef, block: Dim3, grid: Dim3,
               scalars: tuple[tuple[str, int], ...]) -> _Structure:
    key = (id(kernel), block, grid, scalars)
    hit = _STRUCT_CACHE.get(key)
    if hit is not None and hit[0] is kernel:
        _STRUCT_CACHE.move_to_end(key)
        return hit[1]
    st = _collect(kernel, block, grid, scalars)
    _STRUCT_CACHE[key] = (kernel, st)
    while len(_STRUCT_CACHE) > _CACHE_LIMIT:
        _STRUCT_CACHE.popitem(last=False)
    return st


# ---------------------------------------------------------------------------
# Numeric checks (per launch arguments)
# ---------------------------------------------------------------------------


def _form_extreme(form: AffineForm, lo: dict[str, float],
                  hi: dict[str, float], want_max: bool) -> float | None:
    if form.irregular:
        return None
    total = float(form.const)
    for sym, c in form.coeffs:
        bounds = (hi if (c > 0) == want_max else lo)
        if sym not in bounds:
            return None
        total += c * bounds[sym]
    return total


def _ctx_trips(ctx: tuple, lo: dict[str, float], hi: dict[str, float]
               ) -> dict[str, int]:
    """Max trip count per iterator symbol in scope, outermost first.

    Extends ``lo``/``hi`` in place so inner-loop bounds may reference outer
    iterators (triangular loops).  Unresolvable loops are simply absent.
    """
    trips: dict[str, int] = {}
    for entry in ctx:
        if entry[0] != "loop":
            continue
        meta = entry[1]
        if meta is None or meta.iterator is None or not meta.step:
            continue
        if meta.start is None or meta.bound is None:
            continue
        if meta.step > 0:
            span_hi = _form_extreme(meta.bound, lo, hi, want_max=True)
            span_lo = _form_extreme(meta.start, lo, hi, want_max=False)
        else:
            span_hi = _form_extreme(meta.start, lo, hi, want_max=True)
            span_lo = _form_extreme(meta.bound, lo, hi, want_max=False)
        if span_hi is None or span_lo is None:
            continue
        n = max(int(math.ceil((span_hi - span_lo) / abs(meta.step))), 0)
        trips[meta.iterator] = n
        lo[meta.iterator] = 0.0
        hi[meta.iterator] = float(max(n - 1, 0))
    return trips


_GLOBAL_AXES = ((TIDX, 0), (TIDY, 1), (TIDZ, 2),
                (BIDX, 3), (BIDY, 4), (BIDZ, 5))
_SHARED_AXES = ((TIDX, 0), (TIDY, 1), (TIDZ, 2))
_AXIS_NAMES = frozenset(s for s, _ in _GLOBAL_AXES)


def _axis_support(gform: AffineForm, ext: dict[str, int]
                  ) -> dict[str, int] | None:
    """Positive per-axis coefficients of a guard form, or None when the
    form involves anything besides launch axes (iterators, free params)."""
    support: dict[str, int] = {}
    for sym, c in gform.coeffs:
        if sym not in ext or c <= 0:
            return None
        support[sym] = c
    return support


def _sweep(terms: list[tuple[int, int]], slack: int) -> str | None:
    """Mixed-radix disjointness: each stride must clear the span all
    smaller terms (plus loop slack) can accumulate."""
    terms.sort()
    acc = slack
    for c, extent in terms:
        if c <= acc:
            return (f"stride {c} not larger than accumulated span {acc} "
                    f"(possible cross-thread collision)")
        acc += c * (extent - 1)
    return None


def _perfect_radix(live: dict[str, int], ext: dict[str, int]
                   ) -> tuple[int, list[str]] | None:
    """If ``live`` is an exact mixed-radix system over its axes (unit base
    stride, each next stride = previous * extent), return (natural range,
    axes by stride); the form then covers 0..range-1 contiguously."""
    order = sorted(live, key=lambda s: live[s])
    acc = 1
    for sym in order:
        if live[sym] != acc:
            return None
        acc *= ext[sym]
    return acc, order


def _disjoint_across_threads(
    form: AffineForm,
    trips: dict[str, int],
    ext: dict[str, int],
    guards: tuple,
) -> str | None:
    """None when ``form`` provably maps distinct threads to distinct
    addresses over the launch box clipped by ``guards``.

    Loop iterators join the mixed-radix sweep as extra axes: injectivity
    over the full (thread, iteration) box is stronger than thread-
    disjointness, but it is sound and it is what strided multi-row stores
    like ``A[tid + j*n]`` need to pass."""
    iter_terms: list[tuple[int, int]] = []
    for sym, c in form.coeffs:
        if sym in _AXIS_NAMES:
            continue  # handled below via the axis extents
        if sym.startswith("param:") or sym.startswith("blockDim.") \
                or sym.startswith("gridDim."):
            continue  # warp- and launch-uniform shift
        n = trips.get(sym)
        if n is None:
            return f"iterator {sym!r} has unbounded range"
        if n > 1:
            iter_terms.append((abs(c), n))

    ext = dict(ext)
    # Equality guards pin an injective axis combination to one point, so
    # those axes stop contributing distinct threads (e.g. `if (tid == 0)`).
    for op, gform, _bound in guards:
        if op != "eq":
            continue
        support = _axis_support(gform, ext)
        if not support:
            continue
        live = [(c, ext[s]) for s, c in support.items() if ext[s] > 1]
        if _sweep(live, 0) is None:
            for sym in support:
                ext[sym] = 1

    # "<" guards merge their axes into one composite term whose extent is
    # the guard bound — this is what makes `c[i*nj + j]` under
    # `if (i < ni && j < nj)` injective even though the unclipped j range
    # overhangs a row.
    terms: list[tuple[int, int]] = list(iter_terms)
    used: set[str] = set()
    residual = form
    for op, gform, bound in guards:
        if op != "lt":
            continue
        support = _axis_support(gform, ext)
        if not support:
            continue
        live = {s: c for s, c in support.items() if ext[s] > 1}
        if not live or used & set(live):
            continue
        radix = _perfect_radix(live, ext)
        if radix is None:
            continue
        natural, order = radix
        span = bound - gform.const
        if span <= 0:
            continue
        lam, rem = divmod(residual.coeff(order[0]) or 0, live[order[0]])
        if rem or lam == 0:
            continue
        axis_part = AffineForm(tuple(sorted(live.items())), 0)
        candidate = residual - axis_part * AffineForm.constant(lam)
        if any(candidate.coeff(s) for s in live):
            continue
        residual = candidate
        used |= set(live)
        terms.append((abs(lam), min(natural, span)))

    for sym, extent in ext.items():
        if extent <= 1 or sym in used:
            continue
        c = residual.coeff(sym) or 0
        if c == 0:
            return f"address does not depend on {sym} (extent {extent})"
        terms.append((abs(c), extent))
    return _sweep(terms, 0)


def block_homogeneity(
    kernel: FunctionDef,
    block: Dim3,
    grid: Dim3,
    args: tuple[tuple[str, float | int, CType], ...],
    memory=None,
) -> HomogeneityReport:
    """Decide whether the launch may use widened-block dedup.

    ``args`` are the resolved launch bindings (name, value, ctype); pointer
    values are device addresses.  ``memory`` (a
    :class:`~repro.sim.memory.GlobalMemory`) enables the pointer-aliasing
    check; without it any two pointer args are conservatively assumed
    distinct allocations only if their addresses differ.
    """
    scalar_lo: dict[str, float] = {}
    ptr_addrs: dict[str, int] = {}
    int_scalars: list[tuple[str, int]] = []
    for name, value, ctype in args:
        if ctype.is_pointer:
            ptr_addrs[name] = int(value)
        else:
            try:
                fval = float(value)
            except (TypeError, ValueError):
                continue
            scalar_lo[f"param:{name}"] = fval
            if fval.is_integer():
                int_scalars.append((name, int(fval)))

    st = _structure(kernel, block, grid, tuple(sorted(int_scalars)))
    reasons = list(st.reasons)
    if reasons:
        return HomogeneityReport(False, tuple(reasons))

    extents = (block[0], block[1], block[2], grid[0], grid[1], grid[2])
    base_lo: dict[str, float] = dict(scalar_lo)
    base_hi: dict[str, float] = dict(scalar_lo)
    for (sym, axis) in _GLOBAL_AXES:
        base_lo[sym] = 0.0
        base_hi[sym] = float(extents[axis] - 1)
    for axis, sym in enumerate(("blockDim.x", "blockDim.y", "blockDim.z")):
        base_lo[sym] = base_hi[sym] = float(block[axis])
    for axis, sym in enumerate(("gridDim.x", "gridDim.y", "gridDim.z")):
        base_lo[sym] = base_hi[sym] = float(grid[axis])

    # Pointer-aliasing: stored roots must not share an allocation with any
    # other referenced root.
    stored_roots = {a.root for a in st.accesses if a.is_store}
    if memory is not None and ptr_addrs:
        alloc_of: dict[str, int] = {}
        for name, addr in ptr_addrs.items():
            try:
                alloc_of[name] = memory.find(addr).start
            except Exception:
                alloc_of[name] = addr
        groups: dict[int, list[str]] = {}
        for name, start in alloc_of.items():
            groups.setdefault(start, []).append(name)
        for members in groups.values():
            if len(members) > 1 and any(
                f"ptr:{m}" in stored_roots for m in members
            ):
                reasons.append(
                    f"pointer args {sorted(members)} alias one allocation "
                    f"with stores")

    # Per-access trip counts (context-dependent).
    trips_of: list[dict[str, int]] = []
    for a in st.accesses:
        lo = dict(base_lo)
        hi = dict(base_hi)
        trips_of.append(_ctx_trips(a.ctx, lo, hi))

    loaded_roots = {a.root for a in st.accesses if not a.is_store}
    store_shape: dict[str, AffineForm] = {}
    store_trips: dict[str, dict[str, int]] = {}
    store_guards: dict[str, set] = {}
    for a, trips in zip(st.accesses, trips_of):
        if not a.is_store:
            continue
        if a.root == "?":
            reasons.append("store through an unresolved pointer")
            continue
        if a.const_value and a.root not in loaded_roots:
            continue  # literal keep-alive write to a never-read root

        if a.form is None:
            reasons.append(f"non-affine store index on {a.root}")
            continue
        guards = {e[1:] for e in a.ctx if e[0] == "guard"}
        prev = store_shape.get(a.root)
        if prev is None:
            store_shape[a.root] = a.form
            store_trips[a.root] = trips
            store_guards[a.root] = guards
        else:
            # Only guards common to every store site may justify
            # disjointness.
            store_guards[a.root] &= guards
            if prev != a.form:
                reasons.append(f"multiple store index shapes on {a.root}")

    for a, trips in zip(st.accesses, trips_of):
        if a.is_store:
            continue
        if a.root == "?":
            reasons.append("load through an unresolved pointer")
            continue
        if a.root not in store_shape:
            continue  # read-only root: any address pattern is fine
        shape = store_shape[a.root]
        if a.form is None or a.form != shape:
            reasons.append(
                f"load from stored root {a.root} does not match the store "
                f"index shape")
            continue
        s_trips = store_trips[a.root]
        for sym in a.form.symbols():
            if sym in trips and sym in s_trips \
                    and trips[sym] > s_trips[sym]:
                reasons.append(
                    f"load range of iterator {sym!r} exceeds the store "
                    f"range on {a.root}")

    if reasons:
        return HomogeneityReport(False, tuple(dict.fromkeys(reasons)))

    for root, shape in store_shape.items():
        axes = _SHARED_AXES if root.startswith("shared:") else _GLOBAL_AXES
        ext = {sym: extents[axis] for sym, axis in axes}
        why = _disjoint_across_threads(
            shape, store_trips[root], ext,
            tuple(sorted(store_guards[root], key=repr)))
        if why is not None:
            reasons.append(f"{root}: {why}")

    return HomogeneityReport(not reasons, tuple(dict.fromkeys(reasons)))


def clear_homogeneity_cache() -> None:
    _STRUCT_CACHE.clear()
