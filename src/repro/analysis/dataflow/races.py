"""Barrier-interval MHP analysis and affine race proofs (``catt race``).

The flat epoch heuristic this module replaces walked statements in source
order and bumped one global counter per ``__syncthreads()`` — a barrier
inside a loop body incremented it *once*, silently separating accesses that
actually repeat (and race) every iteration.  Here the may-happen-in-parallel
question is answered on the kernel CFG instead:

* **Segments.**  Each basic block's action list is split at every
  *separating* barrier (one all threads of a TB reach together: not under a
  thread-dependent guard, not in a loop with a thread-dependent trip count
  or a thread-dependent ``break``/``continue``).  Divergent barriers do not
  separate anything — on hardware they are UB and the conservative answer is
  that accesses on both sides may still be concurrent.

* **Intervals.**  The barrier interval of a segment is its weakly-connected
  component in the segment graph whose edges are the CFG edges (last segment
  of a predecessor block to first segment of a successor) — *without* the
  intra-block segment-to-segment edges a barrier cut.  A loop back edge
  therefore correctly merges the post-barrier tail of iteration *i* with the
  pre-barrier head of iteration *i+1*: two accesses on opposite sides of a
  single in-loop barrier still share an interval, which is exactly the case
  the old counter missed.

* **Disjointness.**  Two accesses to one array in one interval, at least one
  a write, race unless their index forms are provably disjoint across
  distinct threads of a TB.  Writing each affine index as
  ``c·t + Σ cᵤ·u + Σ cᵢ·i + k`` (thread axes / TB-uniform symbols / loop
  iterators / constant), the difference over a thread pair ``t₁ ≠ t₂`` must
  be provably nonzero: uniform symbols must cancel, lockstep iterators (of
  barrier-strict loops, for same-phase access pairs) contribute an exact
  ``Δc·i`` set, free iterators are over-approximated by a GCD-multiples ∩
  interval test, and the thread contribution is enumerated exactly over the
  launch's block shape.

Every (array, interval) pair gets a verdict — ``PROVED-SAFE``,
``PROVED-RACE`` or ``UNKNOWN`` — with source provenance.  ``PROVED-RACE``
additionally demands a *definite* concurrent witness: a directed
barrier-free path between the two segments, no thread-dependent guard on
either access, every enclosing loop known to run at least once, and a
concrete thread/iteration assignment hitting the same element.  Global
arrays are analyzed with the same intra-TB scope the dynamic sanitizer
checks (:mod:`repro.sim.sanitize`); cross-TB conflicts are out of scope for
both.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ...frontend.ast_nodes import (
    ArrayRef,
    Assign,
    BreakStmt,
    Call,
    ContinueStmt,
    DeclStmt,
    Expr,
    Ident,
    IfStmt,
    Stmt,
    SyncthreadsStmt,
    UnaryOp,
    path_to_stmt,
    statements_in,
    walk_expr,
)
from ..affine import (
    TIDX,
    TIDY,
    TIDZ,
    AffineForm,
    SymbolicEnv,
    analyze_expr,
)
from .affineprop import AffineFlow, ptr_state_of
from .cfg import DECL, EVAL, SYNC, CFGLoop
from .safety import (
    _guard_env,
    _iterator_trips,
    _line_of,
    cond_always_true,
    cond_tb_uniform,
)

PROVED_SAFE = "PROVED-SAFE"
PROVED_RACE = "PROVED-RACE"
UNKNOWN = "UNKNOWN"

_THREAD_AXES = (TIDX, TIDY, TIDZ)

# Enumeration guard: pair proofs fall back to UNKNOWN rather than grind
# through astronomically large candidate sets.
_ENUM_LIMIT = 1 << 20


@dataclass(frozen=True)
class AccessSite:
    """One array reference, placed in the segment graph."""

    array: str
    space: str                 # "shared" | "global"
    index: AffineForm          # flattened element-index form
    is_read: bool
    is_write: bool
    is_atomic: bool
    guarded: bool              # under a thread-dependent guard / trip count
    segment: int
    block: int                 # CFG block id
    line: int | None

    def describe(self) -> str:
        kind = "atomic" if self.is_atomic else \
            ("write" if self.is_write else "read")
        where = f"line {self.line}" if self.line is not None else "?"
        return f"{kind} of {self.array!r} at {where}"


@dataclass(frozen=True)
class RegionVerdict:
    """The race verdict for one (array, barrier interval) pair."""

    array: str
    space: str                 # "shared" | "global"
    interval: int
    verdict: str               # PROVED-SAFE | PROVED-RACE | UNKNOWN
    reason: str
    lines: tuple[int, ...] = ()

    def __str__(self) -> str:
        where = ",".join(str(l) for l in self.lines) or "?"
        return (f"{self.verdict:12s} {self.space:6s} {self.array!r} "
                f"interval#{self.interval} (lines {where}): {self.reason}")


@dataclass(frozen=True)
class RaceReport:
    """All verdicts for one analyzed kernel."""

    kernel: str
    intervals: int
    verdicts: tuple[RegionVerdict, ...]

    def for_space(self, space: str) -> list[RegionVerdict]:
        return [v for v in self.verdicts if v.space == space]

    def races(self, space: str | None = None) -> list[RegionVerdict]:
        return [v for v in self.verdicts if v.verdict == PROVED_RACE
                and (space is None or v.space == space)]

    def unknowns(self, space: str | None = None) -> list[RegionVerdict]:
        return [v for v in self.verdicts if v.verdict == UNKNOWN
                and (space is None or v.space == space)]

    def safe_arrays(self, space: str | None = None) -> set[str]:
        """Arrays whose every interval verdict is PROVED-SAFE."""
        byname: dict[str, bool] = {}
        for v in self.verdicts:
            if space is not None and v.space != space:
                continue
            byname[v.array] = byname.get(v.array, True) and \
                v.verdict == PROVED_SAFE
        return {a for a, ok in byname.items() if ok}

    def classified_fraction(self, space: str = "shared") -> float:
        vs = self.for_space(space)
        if not vs:
            return 1.0
        done = sum(1 for v in vs if v.verdict != UNKNOWN)
        return done / len(vs)


# ---------------------------------------------------------------------------
# Barrier classification
# ---------------------------------------------------------------------------


def _thread_dep_guard(node: IfStmt, flow, block_dim, grid_dim, trips,
                      child) -> bool:
    env = _guard_env(flow, node.cond, block_dim, grid_dim)
    if cond_tb_uniform(node.cond, env):
        return False
    if child is node.then and cond_always_true(
            node.cond, env, block_dim, grid_dim, trips):
        return False
    return True


def _loop_has_divergent_exit(loop_stmt: Stmt, flow, block_dim, grid_dim,
                             trips) -> bool:
    """A ``break``/``continue`` under a thread-dependent guard lets threads
    leave the loop at different iterations — every barrier in such a loop is
    effectively divergent."""
    for s in statements_in(loop_stmt):
        if not isinstance(s, (BreakStmt, ContinueStmt)):
            continue
        path = path_to_stmt(loop_stmt, s) or ()
        for node, child in zip(path, path[1:]):
            if isinstance(node, IfStmt) and _thread_dep_guard(
                    node, flow, block_dim, grid_dim, trips, child):
                return True
    return False


def _separating_syncs(kernel, kernel_loops, flow, block_dim,
                      grid_dim) -> set[int]:
    """``id(stmt)`` of every SyncthreadsStmt all threads of a TB reach
    together (the same criteria ``CATT-E-DIVERGENT-BARRIER`` lints, plus the
    thread-dependent ``break``/``continue`` case)."""
    trips = _iterator_trips(kernel_loops)
    recs_by_stmt = {id(r.stmt): r for r in kernel_loops.loops}
    out: set[int] = set()
    bad_loops: dict[int, bool] = {}
    for stmt in statements_in(kernel.body):
        if not isinstance(stmt, SyncthreadsStmt):
            continue
        path = path_to_stmt(kernel.body, stmt) or ()
        divergent = False
        for node, child in zip(path, path[1:]):
            if isinstance(node, IfStmt):
                if _thread_dep_guard(node, flow, block_dim, grid_dim,
                                     trips, child):
                    divergent = True
                    break
                continue
            rec = recs_by_stmt.get(id(node))
            if rec is None:
                continue
            if rec.bound is not None and (rec.bound.irregular or any(
                    s in _THREAD_AXES for s in rec.bound.symbols())):
                divergent = True
                break
            if id(node) not in bad_loops:
                bad_loops[id(node)] = _loop_has_divergent_exit(
                    node, flow, block_dim, grid_dim, trips)
            if bad_loops[id(node)]:
                divergent = True
                break
        if not divergent:
            out.add(id(stmt))
    return out


# ---------------------------------------------------------------------------
# Segment graph
# ---------------------------------------------------------------------------


class _SegmentGraph:
    """Basic blocks split at separating barriers, plus the three edge views
    the analysis needs: undirected barrier-free components (intervals), the
    directed barrier-free graph (race witnesses), and the back-edge-free
    phase DAG (lockstep iterators)."""

    def __init__(self, cfg, separating: set[int]):
        self.cfg = cfg
        self.block_segs: dict[int, list[int]] = {}
        self.seg_block: list[int] = []
        nseg = 0
        for b in cfg.blocks:
            segs = [nseg]
            self.seg_block.append(b.id)
            nseg += 1
            for a in b.actions:
                if a.kind == SYNC and id(a.node) in separating:
                    segs.append(nseg)
                    self.seg_block.append(b.id)
                    nseg += 1
            self.block_segs[b.id] = segs
        self.nseg = nseg
        # Directed barrier-free edges: CFG edges only (last segment of the
        # predecessor to first segment of the successor).  Consecutive
        # segments of one block are separated by a barrier by construction.
        self.free_succs: list[list[int]] = [[] for _ in range(nseg)]
        for b in cfg.blocks:
            for s in b.succs:
                self.free_succs[self.block_segs[b.id][-1]].append(
                    self.block_segs[s][0])
        self._components()
        self._phase_components()

    def _components(self) -> None:
        parent = list(range(self.nseg))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for u, succs in enumerate(self.free_succs):
            for v in succs:
                parent[find(u)] = find(v)
        roots: dict[int, int] = {}
        self.interval: list[int] = []
        for s in range(self.nseg):
            r = find(s)
            self.interval.append(roots.setdefault(r, len(roots)))

    def _phase_components(self) -> None:
        """Weak components of the phase DAG: barrier-free edges minus every
        edge into a loop header from inside that loop (back/continue edges).
        Segments sharing a phase execute in one barrier epoch at one
        iteration of every enclosing barrier-strict loop."""
        header_first = {l.header: self.block_segs[l.header][0]
                        for l in self.cfg.loops}
        in_loop = {l.header: l.blocks for l in self.cfg.loops}
        parent = list(range(self.nseg))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for u, succs in enumerate(self.free_succs):
            ub = self.seg_block[u]
            for v in succs:
                vb = self.seg_block[v]
                if vb in header_first and v == header_first[vb] and \
                        ub in in_loop[vb]:
                    continue  # back edge: crosses an iteration boundary
                parent[find(u)] = find(v)
        self.phase: list[int] = [find(s) for s in range(self.nseg)]

    def reaches_barrier_free(self, src: int, dst: int) -> bool:
        if src == dst:
            return True
        seen = {src}
        work = [src]
        while work:
            u = work.pop()
            for v in self.free_succs[u]:
                if v == dst:
                    return True
                if v not in seen:
                    seen.add(v)
                    work.append(v)
        return False

    def barrier_strict(self, loop: CFGLoop) -> bool:
        """True when every cycle through the loop's header crosses a
        separating barrier — i.e. the header's first segment cannot reach
        itself through barrier-free edges inside the loop."""
        start = self.block_segs[loop.header][0]
        seen: set[int] = set()
        work = [v for v in self.free_succs[start]
                if self.seg_block[v] in loop.blocks]
        while work:
            u = work.pop()
            if u == start:
                return False
            if u in seen:
                continue
            seen.add(u)
            for v in self.free_succs[u]:
                if self.seg_block[v] in loop.blocks or v == start:
                    work.append(v)
        return True


# ---------------------------------------------------------------------------
# Access collection
# ---------------------------------------------------------------------------


def _shared_dims(kernel) -> dict[str, tuple[int, ...]]:
    dims: dict[str, tuple[int, ...]] = {}
    for stmt in statements_in(kernel.body):
        if isinstance(stmt, DeclStmt) and stmt.is_shared:
            for d in stmt.declarators:
                dims[d.name] = d.array_sizes
    return dims


def _guarded_exprs(kernel, flow, block_dim, grid_dim, trips,
                   recs_by_stmt) -> set[int]:
    """``id(expr)`` of every evaluation site under a thread-dependent guard
    or inside a loop with a thread-dependent trip count.  Such accesses may
    not execute for every thread, which only matters for *race witnesses*
    (safety proofs over-approximate execution anyway)."""
    from ...frontend.ast_nodes import expressions_in

    guarded: set[int] = set()

    def mark(stmt: Stmt) -> None:
        for e in expressions_in(stmt):
            guarded.add(id(e))

    for stmt in statements_in(kernel.body):
        if isinstance(stmt, IfStmt):
            env = _guard_env(flow, stmt.cond, block_dim, grid_dim)
            if cond_tb_uniform(stmt.cond, env):
                continue
            then_ok = cond_always_true(stmt.cond, env, block_dim, grid_dim,
                                       trips)
            if not then_ok:
                mark(stmt.then)
            if stmt.otherwise is not None:
                mark(stmt.otherwise)
        else:
            rec = recs_by_stmt.get(id(stmt))
            if rec is not None and rec.bound is not None and (
                    rec.bound.irregular or any(
                        s in _THREAD_AXES for s in rec.bound.symbols())):
                mark(stmt)
    return guarded


class _Collector:
    """Resolve every array reference of one expression into AccessSites."""

    def __init__(self, shared_dims, env, fallback):
        self.shared_dims = shared_dims
        self.env = env
        self.fallback = fallback
        self.out: list[tuple] = []   # (array, space, form, r, w, atomic, line)

    def _flatten_shared(self, name: str, indexes: list[Expr],
                        env) -> AffineForm:
        dims = self.shared_dims[name]
        if len(indexes) != len(dims):
            return AffineForm.unknown()   # partial reference (row address)
        total = AffineForm.constant(0)
        stride = 1
        for idx, dim in zip(reversed(indexes), reversed(dims)):
            total = total + analyze_expr(idx, env) * \
                AffineForm.constant(stride)
            stride *= dim
        return total

    def _resolve(self, node: ArrayRef, env):
        """(array, space, flattened form) or None for local arrays."""
        indexes: list[Expr] = []
        base: Expr = node
        while isinstance(base, ArrayRef):
            indexes.append(base.index)
            base = base.base
        indexes.reverse()
        if isinstance(base, Ident) and base.name in self.shared_dims:
            return (base.name, "shared",
                    self._flatten_shared(base.name, indexes, env))
        ps = ptr_state_of(base, env)
        if ps is not None and ps.root is not None and len(indexes) == 1:
            return (ps.root, "global",
                    ps.offset + analyze_expr(indexes[0], env))
        return None

    def visit(self, site_expr: Expr) -> None:
        env = self.fallback
        if self.env is not None:
            env = self.env.get(id(site_expr), self.fallback)
        writes: dict[int, bool] = {}    # id(ArrayRef) -> also-reads
        atomics: set[int] = set()
        inner: set[int] = set()
        for node in walk_expr(site_expr):
            if isinstance(node, Assign) and isinstance(node.target, ArrayRef):
                writes[id(node.target)] = node.op != "="
            elif isinstance(node, Call) and node.func == "atomicAdd" and \
                    node.args:
                tgt = node.args[0]
                if isinstance(tgt, UnaryOp) and tgt.op == "&":
                    tgt = tgt.operand
                if isinstance(tgt, ArrayRef):
                    atomics.add(id(tgt))
            if isinstance(node, ArrayRef) and isinstance(node.base, ArrayRef):
                inner.add(id(node.base))
        for node in walk_expr(site_expr):
            if not isinstance(node, ArrayRef) or id(node) in inner:
                continue
            ref = self._resolve(node, env)
            if ref is None:
                continue
            array, space, form = ref
            line = _line_of(node.loc)
            if id(node) in atomics:
                self.out.append((array, space, form, True, True, True, line))
            elif id(node) in writes:
                self.out.append((array, space, form, writes[id(node)], True,
                                 False, line))
            else:
                self.out.append((array, space, form, True, False, False,
                                 line))


def _collect_accesses(kernel, flow, graph: _SegmentGraph, separating,
                      guarded_ids, shared_dims, fallback) -> list[AccessSite]:
    env_sites = getattr(flow, "env_sites", None) if flow is not None else None
    out: list[AccessSite] = []
    for b in graph.cfg.blocks:
        segs = graph.block_segs[b.id]
        cursor = 0
        for action in b.actions:
            if action.kind == SYNC:
                if id(action.node) in separating:
                    cursor += 1
                continue
            exprs: list[Expr] = []
            if action.kind == EVAL:
                exprs.append(action.node)
            elif action.kind == DECL:
                exprs.extend(d.init for d in action.node.declarators
                             if d.init is not None)
            for e in exprs:
                c = _Collector(shared_dims, env_sites, fallback)
                c.visit(e)
                for array, space, form, r, w, atomic, line in c.out:
                    out.append(AccessSite(
                        array=array, space=space, index=form, is_read=r,
                        is_write=w, is_atomic=atomic,
                        guarded=id(e) in guarded_ids, segment=segs[cursor],
                        block=b.id, line=line))
    return out


# ---------------------------------------------------------------------------
# Pairwise disjointness
# ---------------------------------------------------------------------------


@dataclass
class _PairResult:
    verdict: str
    reason: str


def _axis_delta_set(coeff: int, dim: int) -> np.ndarray:
    d = max(dim - 1, 0)
    return coeff * np.arange(-d, d + 1, dtype=np.int64)


def _minkowski(sets: list[np.ndarray]) -> np.ndarray | None:
    acc = np.zeros(1, dtype=np.int64)
    for s in sets:
        if acc.size * s.size > _ENUM_LIMIT:
            return None
        acc = np.unique(acc[:, None] + s[None, :])
    return acc


def _loops_of_block(cfg, block_id: int) -> list[CFGLoop]:
    return [l for l in cfg.loops if block_id in l.blocks
            or l.header == block_id]


class _Prover:
    """Shared launch-level context for every pairwise proof of a kernel."""

    def __init__(self, analysis, flow, graph: _SegmentGraph):
        self.graph = graph
        self.cfg = graph.cfg
        self.block_dim = _normalize_dim(analysis.block_dim)
        self.trips = _iterator_trips(analysis.kernel_loops)
        # loop stmt id -> (iterator, trip or None, barrier-strict)
        self.loop_facts: dict[int, tuple[str | None, int | None, bool]] = {}
        recs = {id(r.stmt): r for r in analysis.kernel_loops.loops}
        for cl in self.cfg.loops:
            rec = recs.get(id(cl.stmt))
            iterator = rec.iterator if rec is not None else None
            trip = rec.trip_count() if rec is not None else None
            self.loop_facts[id(cl.stmt)] = (
                iterator, trip, graph.barrier_strict(cl))
        self._loops_cache: dict[int, list[CFGLoop]] = {}

    def loops_of(self, block_id: int) -> list[CFGLoop]:
        if block_id not in self._loops_cache:
            self._loops_cache[block_id] = _loops_of_block(self.cfg, block_id)
        return self._loops_cache[block_id]

    # -- pair proof --------------------------------------------------------
    def prove(self, a: AccessSite, b: AccessSite) -> _PairResult:
        if a.is_atomic and b.is_atomic:
            return _PairResult(PROVED_SAFE, "both accesses are atomic")
        if a.index.irregular or b.index.irregular:
            return _PairResult(UNKNOWN, "irregular index expression")

        ca = dict(a.index.coeffs)
        cb = dict(b.index.coeffs)
        const = a.index.const - b.index.const

        a_loops = {self.loop_facts[id(l.stmt)][0]: l
                   for l in self.loops_of(a.block)
                   if self.loop_facts[id(l.stmt)][0] is not None}
        b_loops = {self.loop_facts[id(l.stmt)][0]: l
                   for l in self.loops_of(b.block)
                   if self.loop_facts[id(l.stmt)][0] is not None}
        same_phase = self.graph.phase[a.segment] == \
            self.graph.phase[b.segment]

        shared_terms: list[tuple[int, int | None]] = []   # (Δc, trip)
        free_terms: list[tuple[int, int | None]] = []     # (coeff, trip)
        for sym in set(ca) | set(cb):
            if sym in _THREAD_AXES:
                continue
            la, lb = a_loops.get(sym), b_loops.get(sym)
            if la is None and lb is None:
                # TB-uniform symbol (param, block index, unknown): the
                # difference is constant across the TB, so it must cancel.
                if ca.get(sym, 0) != cb.get(sym, 0):
                    return _PairResult(
                        UNKNOWN, f"uniform symbol {sym!r} does not cancel")
                continue
            # Loop iterator(s).  Lockstep — a single shared value — only
            # when both sides sit in the same phase of the same
            # barrier-strict loop; anything else ranges freely per side.
            if la is not None and lb is not None and la is lb and \
                    same_phase and self.loop_facts[id(la.stmt)][2]:
                dc = ca.get(sym, 0) - cb.get(sym, 0)
                if dc:
                    shared_terms.append(
                        (dc, self.loop_facts[id(la.stmt)][1]))
                continue
            if la is not None and ca.get(sym, 0):
                free_terms.append(
                    (ca[sym], self.loop_facts[id(la.stmt)][1]))
            if lb is not None and cb.get(sym, 0):
                free_terms.append(
                    (-cb[sym], self.loop_facts[id(lb.stmt)][1]))
            if la is None and ca.get(sym, 0) or \
                    lb is None and cb.get(sym, 0):
                # Iterator symbol leaked outside any loop of that side's
                # block (e.g. same-named loops): treat as non-cancelling.
                return _PairResult(
                    UNKNOWN, f"iterator symbol {sym!r} out of scope")

        return self._decide(a, b, ca, cb, const, shared_terms, free_terms)

    def _decide(self, a, b, ca, cb, const, shared_terms,
                free_terms) -> _PairResult:
        ta = [ca.get(s, 0) for s in _THREAD_AXES]
        tb = [cb.get(s, 0) for s in _THREAD_AXES]

        # Exact shared-iterator value set (lockstep terms).
        shared_sets: list[np.ndarray] = []
        for dc, trip in shared_terms:
            if trip is None:
                free_terms.append((dc, None))   # unknown trip: over-approx
                continue
            shared_sets.append(dc * np.arange(trip, dtype=np.int64))
        shared = _minkowski(shared_sets)
        if shared is None:
            return _PairResult(UNKNOWN, "iterator value set too large")

        # Free iterators: GCD-multiples ∩ interval over-approximation.
        gF = 0
        flo: float = 0
        fhi: float = 0
        for c, trip in free_terms:
            gF = math.gcd(gF, abs(c))
            if trip is None:
                flo, fhi = -math.inf, math.inf
            else:
                span = c * (trip - 1)
                flo += min(0, span)
                fhi += max(0, span)
        free_present = bool(free_terms)

        # Thread contribution.
        if ta == tb:
            axis_sets = [_axis_delta_set(c, d)
                         for c, d in zip(ta, self.block_dim)]
            deltas = _mesh_nonzero(axis_sets, self.block_dim)
            if deltas is None:
                return _PairResult(UNKNOWN, "thread delta set too large")
            v_all = deltas
            exact_neq = True
        else:
            per_axis = []
            for c1, c2, d in zip(ta, tb, self.block_dim):
                u = c1 * np.arange(d, dtype=np.int64)
                v = c2 * np.arange(d, dtype=np.int64)
                if u.size * v.size > _ENUM_LIMIT:
                    return _PairResult(UNKNOWN, "thread pair set too large")
                per_axis.append(np.unique(u[:, None] - v[None, :]))
            v_all = _minkowski(per_axis)
            if v_all is None:
                return _PairResult(UNKNOWN, "thread pair set too large")
            exact_neq = False

        # Candidate differences with the free part factored out.
        base = _minkowski([np.array([const], dtype=np.int64), v_all, shared])
        if base is None:
            return _PairResult(UNKNOWN, "candidate set too large")

        if free_present:
            need = -base
            hit = (need % gF == 0) if gF else (need == 0)
            hit &= (need >= flo) & (need <= fhi)
            if not hit.any():
                return _PairResult(PROVED_SAFE, self._safe_reason(free_terms))
            return _PairResult(
                UNKNOWN, "free loop iterators may align the indexes "
                f"({a.describe()} vs {b.describe()})")

        if not (base == 0).any():
            return _PairResult(PROVED_SAFE, self._safe_reason(free_terms))

        # A zero difference is achievable — definite race only with a
        # concrete distinct-thread witness and guaranteed execution.
        witness = f"{a.describe()} and {b.describe()} hit a common element"
        if a.guarded or b.guarded:
            return _PairResult(
                UNKNOWN, witness + " only under a thread-dependent guard")
        if not self._always_runs(a) or not self._always_runs(b):
            return _PairResult(
                UNKNOWN, witness + " but an enclosing trip count is unknown")
        if not (self.graph.reaches_barrier_free(a.segment, b.segment)
                or self.graph.reaches_barrier_free(b.segment, a.segment)):
            # Both sites are unguarded here (thread-dependent guards bailed
            # out above), so intra-TB control flow is lockstep: either every
            # segment walk between them crosses a separating sync (the pair
            # is barrier-ordered), or no walk exists at all (mutually
            # exclusive branches of a TB-uniform if, never co-executed
            # within a TB).  Cross-iteration pairs are covered because
            # reachability follows back edges.
            return _PairResult(
                PROVED_SAFE,
                "every path between the accesses crosses a TB-wide barrier")
        if exact_neq:
            return _PairResult(PROVED_RACE, witness)
        # Distinct coefficients: a zero of the full pair set may only occur
        # on the t1 == t2 diagonal.  A spare axis (coefficient 0 on one
        # side, dimension >= 2) lets the witness move off the diagonal.
        for c1, c2, d in zip(ta, tb, self.block_dim):
            if d >= 2 and (c1 == 0 or c2 == 0):
                return _PairResult(PROVED_RACE, witness)
        diag = _minkowski([(c1 - c2) * np.arange(d, dtype=np.int64)
                           for c1, c2, d in zip(ta, tb, self.block_dim)])
        needed = -(const + shared)
        if diag is not None and np.isin(needed, v_all).any() and \
                (np.isin(needed, v_all) & ~np.isin(needed, diag)).any():
            return _PairResult(PROVED_RACE, witness)
        return _PairResult(
            UNKNOWN, witness + " but the witness may be a single thread")

    def _safe_reason(self, free_terms) -> str:
        if free_terms:
            return ("thread strides and the iterator GCD/interval test "
                    "prove cross-thread disjointness")
        return "constant thread-distance test proves disjointness"

    def _always_runs(self, acc: AccessSite) -> bool:
        for l in self.loops_of(acc.block):
            _it, trip, _strict = self.loop_facts[id(l.stmt)]
            if l.kind != "dowhile" and (trip is None or trip < 1):
                return False
        return True


def _normalize_dim(dim) -> tuple[int, int, int]:
    if isinstance(dim, int):
        return (dim, 1, 1)
    t = tuple(dim)
    return (t + (1, 1, 1))[:3]


def _mesh_nonzero(axis_sets: list[np.ndarray],
                  dims: tuple[int, int, int]) -> np.ndarray | None:
    """Values of Σ cᵢ·Δᵢ over Δ ≠ (0,0,0), |Δᵢ| < dimᵢ.

    Axis sets are symmetric arrays built by :func:`_axis_delta_set`; the
    all-zero tuple (the same thread twice) is excluded by dropping the
    one combination where every axis picks its midpoint.
    """
    sizes = [max(2 * d - 1, 1) for d in dims]
    if sizes[0] * sizes[1] * sizes[2] > _ENUM_LIMIT:
        return None
    # axis_sets[i] is coeff_i * arange(-(d_i - 1), d_i); the matching raw
    # delta ranges drive the "not the same thread twice" mask.
    dx = np.arange(-(dims[0] - 1), dims[0], dtype=np.int64)
    dy = np.arange(-(dims[1] - 1), dims[1], dtype=np.int64)
    dz = np.arange(-(dims[2] - 1), dims[2], dtype=np.int64)
    gx, gy, gz = np.meshgrid(axis_sets[0], axis_sets[1], axis_sets[2],
                             indexing="ij")
    mx, my, mz = np.meshgrid(dx, dy, dz, indexing="ij")
    nonzero = (mx != 0) | (my != 0) | (mz != 0)
    return np.unique((gx + gy + gz)[nonzero])


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def analyze_races(analysis) -> RaceReport:
    """Classify every (array, barrier interval) pair of one analyzed kernel.

    ``analysis`` is a :class:`~repro.analysis.kernel_info.KernelAnalysis`;
    the dataflow fixpoint (``analysis.kernel_loops.flow``) supplies the CFG
    and per-site affine environments.  Verdict counts are published as
    ``race.proved_safe`` / ``race.proved_race`` / ``race.unknown``.
    """
    cached = getattr(analysis, "_race_report", None)
    if cached is not None:
        return cached
    kernel = analysis.kernel
    kl = analysis.kernel_loops
    flow = getattr(kl, "flow", None)
    block_dim = _normalize_dim(analysis.block_dim)
    if flow is None:
        flow = AffineFlow(kernel, block_dim=block_dim)
    grid_dim = getattr(flow, "grid_dim", None)

    separating = _separating_syncs(kernel, kl, flow, block_dim, grid_dim)
    graph = _SegmentGraph(flow.cfg, separating)
    trips = _iterator_trips(kl)
    recs_by_stmt = {id(r.stmt): r for r in kl.loops}
    guarded_ids = _guarded_exprs(kernel, flow, block_dim, grid_dim, trips,
                                 recs_by_stmt)
    shared_dims = _shared_dims(kernel)
    fallback = SymbolicEnv(block_dim=block_dim, grid_dim=grid_dim)
    accesses = _collect_accesses(kernel, flow, graph, separating,
                                 guarded_ids, shared_dims, fallback)

    prover = _Prover(analysis, flow, graph)
    regions: dict[tuple[str, int], list[AccessSite]] = {}
    spaces: dict[str, str] = {}
    for acc in accesses:
        regions.setdefault((acc.array, graph.interval[acc.segment]),
                           []).append(acc)
        spaces[acc.array] = acc.space

    verdicts: list[RegionVerdict] = []
    for (array, interval), accs in sorted(
            regions.items(), key=lambda kv: (kv[0][0], kv[0][1])):
        verdicts.append(_region_verdict(array, spaces[array], interval,
                                        accs, prover))
    report = RaceReport(kernel=kernel.name,
                        intervals=len(set(graph.interval)),
                        verdicts=tuple(verdicts))
    _publish(report)
    try:
        analysis._race_report = report
    except Exception:
        pass
    return report


def _region_verdict(array: str, space: str, interval: int,
                    accs: list[AccessSite], prover: _Prover) -> RegionVerdict:
    lines = tuple(sorted({a.line for a in accs if a.line is not None}))
    if not any(a.is_write for a in accs):
        return RegionVerdict(array, space, interval, PROVED_SAFE,
                             "read-only in this interval", lines)
    # Deduplicate identical sites (same segment/index/kind) to keep the
    # pair count quadratic in *distinct* references.
    uniq: dict[tuple, AccessSite] = {}
    for a in accs:
        key = (a.segment, a.index.coeffs, a.index.const, a.index.irregular,
               a.is_read, a.is_write, a.is_atomic, a.guarded)
        uniq.setdefault(key, a)
    sites = list(uniq.values())
    worst: _PairResult | None = None
    for i, a in enumerate(sites):
        for b in sites[i:]:
            if not (a.is_write or b.is_write):
                continue
            if a is b and not a.is_write:
                continue
            res = prover.prove(a, b)
            if res.verdict == PROVED_RACE:
                pl = tuple(sorted({l for l in (a.line, b.line)
                                   if l is not None}))
                return RegionVerdict(array, space, interval, PROVED_RACE,
                                     res.reason, pl or lines)
            if res.verdict == UNKNOWN and worst is None:
                worst = res
    if worst is not None:
        return RegionVerdict(array, space, interval, UNKNOWN,
                             worst.reason, lines)
    return RegionVerdict(array, space, interval, PROVED_SAFE,
                         "all cross-thread access pairs proved disjoint",
                         lines)


def _publish(report: RaceReport) -> None:
    from ...obs.metrics_registry import registry

    reg = registry()
    if not getattr(reg, "enabled", False):
        return
    c = reg.counter
    for v in report.verdicts:
        if v.verdict == PROVED_SAFE:
            c("race.proved_safe").inc()
        elif v.verdict == PROVED_RACE:
            c("race.proved_race").inc()
        else:
            c("race.unknown").inc()
