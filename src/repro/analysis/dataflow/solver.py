"""Forward worklist solver over a :class:`~.cfg.CFG`.

Generic over the abstract state: the client supplies ``transfer``, ``join``,
``initial`` and (optionally) ``widen``.  Blocks are visited in reverse
postorder so loop preheaders are always evaluated before their headers —
the affine-propagation client relies on this to pin induction variables to
closed forms on the header's first visit.

Termination: the client's header pinning makes almost every kernel converge
in two or three sweeps.  As a backstop, any block transferred more than
``max_visits`` times has its output widened (the client's ``widen`` maps
changed facts to ⊤), after which outputs can only move down the lattice.
"""

from __future__ import annotations

from .cfg import CFG


def solve_forward(cfg: CFG, transfer, join, initial,
                  max_visits: int = 24, widen=None):
    """Run a forward dataflow analysis to fixpoint.

    ``transfer(block, in_state, outs)`` returns the block's out-state (it
    receives the current ``outs`` mapping read-only, so loop headers can
    consult their preheader's out-state).  ``join(states)`` merges a
    non-empty list of predecessor states.  ``initial()`` produces the
    boundary state used for the entry block and any pred-less (dead-code)
    block.  Returns ``(ins, outs)`` keyed by block id.
    """
    order = cfg.rpo()
    position = {b: i for i, b in enumerate(order)}
    ins: dict[int, object] = {}
    outs: dict[int, object] = {}
    visits: dict[int, int] = {}

    work = set(order)
    while work:
        bid = min(work, key=position.__getitem__)
        work.discard(bid)
        block = cfg.blocks[bid]
        pred_outs = [outs[p] for p in block.preds if p in outs]
        in_state = join(pred_outs) if pred_outs else initial()
        ins[bid] = in_state
        out = transfer(block, in_state, outs)
        if bid in outs and out == outs[bid]:
            continue
        visits[bid] = visits.get(bid, 0) + 1
        if visits[bid] > max_visits and widen is not None:
            out = widen(out, outs.get(bid))
        outs[bid] = out
        work.update(block.succs)
    return ins, outs
