"""Constant & affine-form propagation over the kernel CFG (Eq. 5 precision).

The legacy walker in :mod:`repro.analysis.loops` tracks a single
:class:`~repro.analysis.affine.SymbolicEnv` along its traversal and poisons
anything it cannot follow syntactically: values merged across ``if`` arms,
strength-reduced secondary inductions whose step is a named constant
(``c += xy``), and pointer bumps (``p += stride``).  This module replaces
that single-pass environment with a forward dataflow fixpoint:

* **Lattice.**  Per scalar, an :class:`AffineForm` (⊤ = ``irregular``); per
  pointer local, a :class:`PtrState` — root array plus an affine element
  offset.  The join keeps facts that agree on all incoming edges and drops
  the rest to ⊤, so straight-line precision survives ``if`` joins whenever
  both arms compute the same form.

* **Loop headers.**  On every header visit the engine re-derives the loop's
  induction variables from the preheader's fixpoint state: any name updated
  exactly once per iteration by a loop-invariant constant step (``i++``,
  ``idx += stride``, ``p += stride``, ``f = f + 1``) is pinned to the closed
  form ``start + iter * step``; every other name assigned in the body is
  poisoned.  This both terminates the fixpoint quickly and mirrors the
  paper's Eq. 5 view of an index as linear in the loop iterator.

* **Loop exits.**  All body-assigned names are poisoned on exit (their final
  value is the trip-count-dependent last iterate), so iterator symbols never
  leak past their loop.

The engine records an environment snapshot per *evaluation site* (statement
expressions, branch/loop conditions, declarator initializers) keyed by
``id(expr)``; :func:`repro.analysis.loops.find_loops` resolves every array
reference against the snapshot of its enclosing evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...frontend.ast_nodes import (
    Assign,
    BinOp,
    Cast,
    DeclStmt,
    DoWhileStmt,
    Expr,
    ForStmt,
    FunctionDef,
    Ident,
    IntLit,
    PostIncDec,
    Stmt,
    UnaryOp,
    WhileStmt,
    expressions_in,
    statements_in,
    walk_expr,
)
from ..affine import AffineForm, SymbolicEnv, analyze_expr
from .cfg import CFG, DECL, EVAL, BasicBlock, CFGLoop, build_cfg
from .solver import solve_forward


@dataclass(frozen=True)
class PtrState:
    """Abstract value of a pointer-typed local: which global array it points
    into and the affine element offset from that array's base."""

    root: str | None
    offset: AffineForm


UNKNOWN_PTR = PtrState(None, AffineForm.unknown())


@dataclass
class FlowEnv(SymbolicEnv):
    """A :class:`SymbolicEnv` extended with pointer states."""

    pointers: dict[str, PtrState] = field(default_factory=dict)

    def copy(self) -> "FlowEnv":
        return FlowEnv(dict(self.bindings), self.block_dim, self.grid_dim,
                       dict(self.pointers))


@dataclass(frozen=True)
class LoopMeta:
    """Per-loop facts derived at the loop header's fixpoint."""

    iterator: str | None
    step: int | None
    start: AffineForm | None
    bound: AffineForm | None
    inductions: dict[str, AffineForm]   # name -> per-iteration step form


# ---------------------------------------------------------------------------
# Lattice operations
# ---------------------------------------------------------------------------


def join_envs(envs: list[FlowEnv]) -> FlowEnv:
    """Pointwise join: facts equal on every edge survive, others go to ⊤.

    A name unbound on one edge means "never assigned there", whose value is
    the warp-uniform unknown ``param:<name>`` (the same convention as
    :meth:`SymbolicEnv.lookup`), so e.g. joining a bound ``param:n`` with an
    unbound edge still keeps the symbol.
    """
    if len(envs) == 1:
        return envs[0].copy()
    first = envs[0]
    out = FlowEnv(block_dim=first.block_dim, grid_dim=first.grid_dim)
    keys = set()
    for e in envs:
        keys.update(e.bindings)
    for k in keys:
        vals = [e.bindings.get(k) or AffineForm.symbol(f"param:{k}")
                for e in envs]
        v0 = vals[0]
        out.bindings[k] = v0 if all(v == v0 for v in vals[1:]) \
            else AffineForm.unknown()
    pkeys = set()
    for e in envs:
        pkeys.update(e.pointers)
    for k in pkeys:
        states = [e.pointers.get(k, UNKNOWN_PTR) for e in envs]
        roots = {p.root for p in states}
        if len(roots) == 1 and None not in roots:
            off0 = states[0].offset
            same = all(p.offset == off0 for p in states[1:])
            out.pointers[k] = PtrState(states[0].root,
                                       off0 if same else AffineForm.unknown())
        else:
            out.pointers[k] = UNKNOWN_PTR
    return out


def widen_envs(new: FlowEnv, old: FlowEnv | None) -> FlowEnv:
    """Backstop widening: facts still changing after many visits go to ⊤."""
    if old is None:
        return new
    out = new.copy()
    for k, v in new.bindings.items():
        if old.bindings.get(k) != v:
            out.bindings[k] = AffineForm.unknown()
    for k, p in new.pointers.items():
        po = old.pointers.get(k)
        if po != p:
            root = p.root if po is not None and po.root == p.root else None
            out.pointers[k] = PtrState(root, AffineForm.unknown())
    return out


# ---------------------------------------------------------------------------
# Pointer expression evaluation
# ---------------------------------------------------------------------------


def ptr_state_of(expr: Expr | None, env: FlowEnv) -> PtrState | None:
    """Evaluate a pointer-valued expression, or None if not a tracked
    pointer (scalars, shared arrays, unknown names)."""
    if expr is None:
        return None
    if isinstance(expr, Ident):
        return env.pointers.get(expr.name) if hasattr(env, "pointers") else None
    if isinstance(expr, Cast):
        return ptr_state_of(expr.operand, env)
    if isinstance(expr, BinOp) and expr.op in ("+", "-"):
        lhs = ptr_state_of(expr.left, env)
        if lhs is not None:
            delta = analyze_expr(expr.right, env)
            off = lhs.offset + delta if expr.op == "+" else lhs.offset - delta
            return PtrState(lhs.root, off)
        if expr.op == "+":
            rhs = ptr_state_of(expr.right, env)
            if rhs is not None:
                return PtrState(rhs.root, rhs.offset + analyze_expr(expr.left, env))
    return None


# ---------------------------------------------------------------------------
# Induction-variable recognition (syntactic candidates)
# ---------------------------------------------------------------------------


def _update_candidates(stmt: Stmt) -> tuple[dict[str, list], set[str]]:
    """Scan a loop (body + for-step) for per-iteration updates.

    Returns ``(deltas, killed)``: ``deltas[name]`` is the list of recognized
    delta updates as ``(sign, expr_or_None)`` pairs (None = literal 1), and
    ``killed`` is the set of names with a non-delta update (plain ``=`` to
    something other than ``x ± e``, ``*=``, ...), which disqualifies them.
    """
    deltas: dict[str, list] = {}
    killed: set[str] = set()

    def exprs():
        yield from expressions_in(stmt.body)
        if isinstance(stmt, ForStmt) and stmt.step is not None:
            yield from walk_expr(stmt.step)

    for e in exprs():
        if isinstance(e, Assign) and isinstance(e.target, Ident):
            name = e.target.name
            entry = deltas.setdefault(name, [])
            if e.op == "+=":
                entry.append((1, e.value))
            elif e.op == "-=":
                entry.append((-1, e.value))
            elif e.op == "=":
                d = _self_delta(name, e.value)
                if d is not None:
                    entry.append(d)
                else:
                    killed.add(name)
            else:
                killed.add(name)
        elif isinstance(e, PostIncDec) and isinstance(e.operand, Ident):
            entry = deltas.setdefault(e.operand.name, [])
            entry.append((1 if e.op == "++" else -1, None))
        elif isinstance(e, UnaryOp) and e.op in ("++", "--") and \
                isinstance(e.operand, Ident):
            entry = deltas.setdefault(e.operand.name, [])
            entry.append((1 if e.op == "++" else -1, None))
    return deltas, killed


def _self_delta(name: str, value: Expr) -> tuple[int, Expr] | None:
    """Match ``x = x + e`` / ``x = e + x`` / ``x = x - e`` for ``x`` = name."""
    if not isinstance(value, BinOp) or value.op not in ("+", "-"):
        return None
    if isinstance(value.left, Ident) and value.left.name == name:
        return (1 if value.op == "+" else -1, value.right)
    if value.op == "+" and isinstance(value.right, Ident) and \
            value.right.name == name:
        return (1, value.left)
    return None


def _declared_in_body(stmt: Stmt) -> set[str]:
    """Names (re)declared inside the loop body — reset every iteration, so
    never induction variables of this loop."""
    names: set[str] = set()
    for s in statements_in(stmt.body):
        if isinstance(s, DeclStmt):
            for d in s.declarators:
                names.add(d.name)
    return names


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


_CMP_OPS = ("<", "<=", ">", ">=", "!=")


class AffineFlow:
    """Forward affine dataflow over one kernel.

    After construction, ``env_sites[id(expr)]`` holds the fixpoint
    environment *before* each evaluation site and ``loop_meta[id(stmt)]``
    the per-loop induction facts.
    """

    def __init__(self, kernel: FunctionDef,
                 block_dim: tuple[int, int, int] | None = None,
                 grid_dim: tuple[int, int, int] | None = None):
        from ..loops import _assigned_names  # runtime import: no cycle

        self.kernel = kernel
        self.block_dim = block_dim
        self.grid_dim = grid_dim
        self.cfg: CFG = build_cfg(kernel.body)
        self.env_sites: dict[int, FlowEnv] = {}
        self.loop_meta: dict[int, LoopMeta] = {}

        self._headers: dict[int, CFGLoop] = {
            l.header: l for l in self.cfg.loops
        }
        self._exits: dict[int, list[CFGLoop]] = {}
        for l in self.cfg.loops:
            self._exits.setdefault(l.exit, []).append(l)
        self._assigned = {
            id(l.stmt): _assigned_names(l.stmt) for l in self.cfg.loops
        }
        self._updates = {
            id(l.stmt): _update_candidates(l.stmt) for l in self.cfg.loops
        }
        self._declared = {
            id(l.stmt): _declared_in_body(l.stmt) for l in self.cfg.loops
        }
        self.ins, self.outs = solve_forward(
            self.cfg, self._transfer, join_envs, self._initial,
            widen=widen_envs,
        )

    # -- boundary ---------------------------------------------------------
    def _initial(self) -> FlowEnv:
        env = FlowEnv(block_dim=self.block_dim, grid_dim=self.grid_dim)
        for p in self.kernel.params:
            if p.type.is_pointer:
                env.pointers[p.name] = PtrState(p.name, AffineForm.constant(0))
        return env

    # -- transfer ---------------------------------------------------------
    def _transfer(self, block: BasicBlock, in_env: FlowEnv,
                  outs: dict[int, FlowEnv]) -> FlowEnv:
        env = in_env.copy()
        for loop in self._exits.get(block.id, ()):
            self._exit_loop(loop, env)
        loop = self._headers.get(block.id)
        if loop is not None:
            self._enter_loop(loop, env, outs)
        for action in block.actions:
            if action.kind == DECL:
                self._do_decl(action.node, env)
            elif action.kind == EVAL:
                self.env_sites[id(action.node)] = env.copy()
                self._do_effects(action.node, env)
            # SYNC: no dataflow effect
        return env

    # -- loop header: pin inductions to closed forms ----------------------
    def _enter_loop(self, loop: CFGLoop, env: FlowEnv,
                    outs: dict[int, FlowEnv]) -> None:
        stmt = loop.stmt
        pre = outs.get(loop.preheader, env)
        assigned = self._assigned[id(stmt)]
        declared = self._declared[id(stmt)]
        deltas, killed = self._updates[id(stmt)]

        steps: dict[str, AffineForm] = {}
        for name, ups in deltas.items():
            if name in killed or name in declared or len(ups) != 1:
                continue
            sign, e = ups[0]
            if e is None:
                steps[name] = AffineForm.constant(sign)
                continue
            free = {n.name for n in walk_expr(e) if isinstance(n, Ident)}
            if free & assigned:
                continue  # step not loop-invariant
            form = analyze_expr(e, pre)
            if not form.is_constant:
                continue
            steps[name] = form if sign > 0 else -form

        iterator, start, bound = self._loop_iterator(stmt, pre, steps)
        step_int: int | None = None
        if iterator is not None and iterator in steps:
            step_int = steps[iterator].const

        self.loop_meta[id(stmt)] = LoopMeta(
            iterator=iterator, step=step_int, start=start, bound=bound,
            inductions={n: f for n, f in steps.items() if n != iterator},
        )

        # Pin the iterator (mirrors the legacy walker's binding rule).
        if iterator is not None:
            base = start if start is not None else AffineForm.unknown()
            if step_int is not None:
                env.bind(iterator, base + AffineForm.symbol(iterator)
                         * AffineForm.constant(step_int))
            else:
                env.bind(iterator, AffineForm.symbol(iterator))
        # Secondary inductions get closed forms; everything else assigned in
        # the loop is loop-variant and poisoned.
        for name in assigned:
            if name == iterator:
                continue
            is_ind = iterator is not None and name in steps
            if name in env.pointers:
                ps = pre.pointers.get(name, env.pointers.get(name, UNKNOWN_PTR))
                if is_ind:
                    off = ps.offset + AffineForm.symbol(iterator) * steps[name]
                    env.pointers[name] = PtrState(ps.root, off)
                else:
                    root = None if name in killed else ps.root
                    env.pointers[name] = PtrState(root, AffineForm.unknown())
                env.poison(name)
            elif is_ind:
                env.bind(name, pre.lookup(name)
                         + AffineForm.symbol(iterator) * steps[name])
            else:
                env.poison(name)

    def _loop_iterator(self, stmt: Stmt, pre: FlowEnv,
                       steps: dict[str, AffineForm]):
        """Iterator name, start and bound forms (legacy `_for_header`
        semantics, evaluated in the preheader fixpoint)."""
        if isinstance(stmt, ForStmt):
            iterator = None
            start = None
            if isinstance(stmt.init, DeclStmt) and \
                    len(stmt.init.declarators) == 1:
                d = stmt.init.declarators[0]
                if not d.array_sizes:
                    iterator = d.name
                    if d.init is not None:
                        start = pre.lookup(d.name)
            elif stmt.init is not None and \
                    hasattr(stmt.init, "expr") and \
                    isinstance(stmt.init.expr, Assign):
                a = stmt.init.expr
                if a.op == "=" and isinstance(a.target, Ident):
                    iterator = a.target.name
                    start = pre.lookup(iterator)
            bound = self._bound_of(stmt.cond, iterator, pre)
            return iterator, start, bound
        # while / do-while: the iterator is a recognized induction compared
        # against a bound in the condition.
        cond = stmt.cond
        if isinstance(cond, BinOp) and cond.op in _CMP_OPS:
            for side, other in ((cond.left, cond.right),
                                (cond.right, cond.left)):
                if isinstance(side, Ident) and side.name in steps:
                    name = side.name
                    bound = analyze_expr(other, pre)
                    if cond.op == "<=":
                        bound = bound + AffineForm.constant(1)
                    return name, pre.lookup(name), bound
        return None, None, None

    def _bound_of(self, cond: Expr | None, iterator: str | None,
                  pre: FlowEnv) -> AffineForm | None:
        if iterator is None or not isinstance(cond, BinOp) or \
                cond.op not in _CMP_OPS:
            return None
        bound = None
        if isinstance(cond.left, Ident) and cond.left.name == iterator:
            bound = analyze_expr(cond.right, pre)
        elif isinstance(cond.right, Ident) and cond.right.name == iterator:
            bound = analyze_expr(cond.left, pre)
        if bound is not None and cond.op == "<=":
            bound = bound + AffineForm.constant(1)
        return bound

    # -- loop exit: final values are trip-count dependent ------------------
    def _exit_loop(self, loop: CFGLoop, env: FlowEnv) -> None:
        _, killed = self._updates[id(loop.stmt)]
        for name in self._assigned[id(loop.stmt)]:
            if name in env.pointers:
                ps = env.pointers[name]
                root = None if name in killed else ps.root
                env.pointers[name] = PtrState(root, AffineForm.unknown())
            env.poison(name)

    # -- straight-line effects --------------------------------------------
    def _do_decl(self, stmt: DeclStmt, env: FlowEnv) -> None:
        for d in stmt.declarators:
            if d.init is not None:
                self.env_sites[id(d.init)] = env.copy()
                self._do_effects(d.init, env)
            if stmt.is_shared or d.array_sizes:
                env.poison(d.name)
                continue
            if stmt.type.is_pointer:
                ps = ptr_state_of(d.init, env) if d.init is not None else None
                env.pointers[d.name] = ps if ps is not None else UNKNOWN_PTR
                env.poison(d.name)
                continue
            if d.init is not None:
                env.bind(d.name, analyze_expr(d.init, env))
            else:
                env.poison(d.name)

    def _do_effects(self, expr: Expr, env: FlowEnv) -> None:
        """Apply every scalar/pointer assignment inside ``expr``."""
        for node in walk_expr(expr):
            if isinstance(node, Assign) and isinstance(node.target, Ident):
                self._do_assign(node, env)
            elif isinstance(node, PostIncDec) and \
                    isinstance(node.operand, Ident):
                self._bump(node.operand.name, 1 if node.op == "++" else -1, env)
            elif isinstance(node, UnaryOp) and node.op in ("++", "--") and \
                    isinstance(node.operand, Ident):
                self._bump(node.operand.name, 1 if node.op == "++" else -1, env)

    def _do_assign(self, node: Assign, env: FlowEnv) -> None:
        name = node.target.name
        if name in env.pointers:
            ps = env.pointers[name]
            if node.op == "=":
                env.pointers[name] = ptr_state_of(node.value, env) or UNKNOWN_PTR
            elif node.op in ("+=", "-="):
                delta = analyze_expr(node.value, env)
                off = ps.offset + delta if node.op == "+=" else ps.offset - delta
                env.pointers[name] = PtrState(ps.root, off)
            else:
                env.pointers[name] = UNKNOWN_PTR
            env.poison(name)
            return
        if node.op == "=":
            env.bind(name, analyze_expr(node.value, env))
            return
        old = env.lookup(name)
        delta = analyze_expr(node.value, env)
        op = node.op[:-1]
        if op == "+":
            env.bind(name, old + delta)
        elif op == "-":
            env.bind(name, old - delta)
        elif op == "*":
            env.bind(name, old * delta)
        else:
            env.poison(name)

    def _bump(self, name: str, sign: int, env: FlowEnv) -> None:
        if name in env.pointers:
            ps = env.pointers[name]
            env.pointers[name] = PtrState(
                ps.root, ps.offset + AffineForm.constant(sign))
            return
        env.bind(name, env.lookup(name) + AffineForm.constant(sign))
