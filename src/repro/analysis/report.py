"""Human-readable rendering of a :class:`KernelAnalysis` (debugging aid and
the ``catt analyze`` CLI output)."""

from __future__ import annotations

from .kernel_info import KernelAnalysis


def _dist(elems: int | None, byts: int | None) -> str:
    """``C=<elems> (<bytes>B)`` fragment, or ``irregular``."""
    if elems is None:
        return "irregular"
    return f"{elems} ({byts}B)"


def format_analysis(analysis: KernelAnalysis) -> str:
    from .dataflow.safety import findings_for_analysis

    occ = analysis.occupancy
    lines = [
        f"kernel {analysis.kernel.name}  block={analysis.block_dim}",
        f"  occupancy: {occ.warps_per_tb} warps/TB x {occ.tb_sm} TBs/SM "
        f"(shm={occ.tb_shm}, reg={occ.tb_reg}, hw={occ.tb_hw})",
        f"  carveout: {occ.shared_carveout_kb} KB shared, "
        f"L1D {occ.l1d_bytes // 1024} KB, "
        f"regs/thread ~{occ.registers_per_thread}",
    ]
    findings = findings_for_analysis(analysis)
    by_loop: dict[int | None, list] = {}
    for f in findings:
        by_loop.setdefault(f.loop_id, []).append(f)
    for la in analysis.loops:
        rec, dec, fp = la.record, la.decision, la.footprint
        codes = sorted({f.code for f in by_loop.get(rec.loop_id, [])})
        suffix = f"  [{', '.join(codes)}]" if codes else ""
        lines.append(
            f"  loop #{rec.loop_id} depth={rec.depth} iter={rec.iterator!r} "
            f"step={rec.step} reuse={la.has_reuse}{suffix}"
        )
        for af in fp.per_access:
            loc = af.locality
            rw = ("R" if loc.access.is_read else "") + ("W" if loc.access.is_write else "")
            c_tid = _dist(loc.inter_thread_elems, loc.inter_thread_bytes)
            c_i = _dist(loc.intra_thread_elems, loc.intra_thread_bytes)
            lines.append(
                f"    {loc.access.array}[{rw}] C_tid={c_tid} C_i={c_i} "
                f"REQ_warp={af.req_warp}"
            )
        status = "fits" if not dec.needed else (
            f"throttle N={dec.n} M={dec.m} -> TLP{dec.tlp}" if dec.fits
            else "unresolvable (left untouched)"
        )
        lines.append(
            f"    SIZE_req={fp.size_req_lines} lines vs L1D={dec.l1d_lines} "
            f"lines: {status}"
        )
    # Findings not tied to any analysed loop (barriers, shared races).
    extra = [f for f in findings if f.loop_id is None
             or all(f.loop_id != la.record.loop_id for la in analysis.loops)]
    for f in sorted(extra, key=lambda f: (f.code, f.line or 0)):
        lines.append(f"  {f}")
    return "\n".join(lines)


def analysis_summary(analysis: KernelAnalysis) -> dict:
    """JSON-serialisable digest of a :class:`KernelAnalysis`.

    Used by run manifests (``catt profile``) so a trace artifact records the
    compile-time decisions alongside the wall-clock phases.
    """
    occ = analysis.occupancy
    loops = []
    for la in analysis.loops:
        dec = la.decision
        loops.append({
            "loop_id": la.loop_id,
            "depth": la.record.depth,
            "iterator": la.record.iterator,
            "reuse": la.has_reuse,
            "size_req_lines": la.footprint.size_req_lines,
            "l1d_lines": dec.l1d_lines,
            "needed": dec.needed,
            "fits": dec.fits,
            "n": dec.n,
            "m": dec.m,
            "tlp": list(dec.tlp),
        })
    return {
        "kernel": analysis.kernel.name,
        "block": list(analysis.block_dim),
        "occupancy": {
            "warps_per_tb": occ.warps_per_tb,
            "tb_sm": occ.tb_sm,
            "shared_carveout_kb": occ.shared_carveout_kb,
            "l1d_bytes": occ.l1d_bytes,
        },
        "tb_m": analysis.tb_m,
        "budget_exhausted_loops": list(analysis.budget_exhausted_loops),
        "loops": loops,
    }
