"""Human-readable rendering of a :class:`KernelAnalysis` (debugging aid and
the ``catt analyze`` CLI output)."""

from __future__ import annotations

from .kernel_info import KernelAnalysis


def format_analysis(analysis: KernelAnalysis) -> str:
    occ = analysis.occupancy
    lines = [
        f"kernel {analysis.kernel.name}  block={analysis.block_dim}",
        f"  occupancy: {occ.warps_per_tb} warps/TB x {occ.tb_sm} TBs/SM "
        f"(shm={occ.tb_shm}, reg={occ.tb_reg}, hw={occ.tb_hw})",
        f"  carveout: {occ.shared_carveout_kb} KB shared, "
        f"L1D {occ.l1d_bytes // 1024} KB, "
        f"regs/thread ~{occ.registers_per_thread}",
    ]
    for la in analysis.loops:
        rec, dec, fp = la.record, la.decision, la.footprint
        lines.append(
            f"  loop #{rec.loop_id} depth={rec.depth} iter={rec.iterator!r} "
            f"step={rec.step} reuse={la.has_reuse}"
        )
        for af in fp.per_access:
            loc = af.locality
            rw = ("R" if loc.access.is_read else "") + ("W" if loc.access.is_write else "")
            c_tid = "irregular" if loc.inter_thread_elems is None else loc.inter_thread_elems
            c_i = "irregular" if loc.intra_thread_elems is None else loc.intra_thread_elems
            lines.append(
                f"    {loc.access.array}[{rw}] C_tid={c_tid} C_i={c_i} "
                f"REQ_warp={af.req_warp}"
            )
        status = "fits" if not dec.needed else (
            f"throttle N={dec.n} M={dec.m} -> TLP{dec.tlp}" if dec.fits
            else "unresolvable (left untouched)"
        )
        lines.append(
            f"    SIZE_req={fp.size_req_lines} lines vs L1D={dec.l1d_lines} "
            f"lines: {status}"
        )
    return "\n".join(lines)
