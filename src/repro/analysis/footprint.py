"""L1D footprint estimation (Eq. 8).

``SIZE_req`` for a loop is the number of cache lines all concurrently
resident warps request per iteration sweep:

    SIZE_req = Σ_{mem insts} REQ_warp × (#Warps_TB × #TB_SM)    [lines]

The per-reference ``REQ_warp`` comes from :mod:`repro.analysis.coalescing`;
multidimensional TBs use the enumerated exact count (§4.2's SYR2K note).
"""

from __future__ import annotations

from dataclasses import dataclass

from .coalescing import requests_per_warp, requests_per_warp_enumerated
from .locality import AccessLocality
from .loops import LoopRecord


@dataclass(frozen=True)
class AccessFootprint:
    locality: AccessLocality
    req_warp: int             # cache lines requested by one warp (Eq. 7)
    # Iterations of loops nested strictly between this access and the loop
    # under analysis ("reuse distance across iterations", §1): an access in a
    # nested inner loop touches req_warp lines *per inner sweep*.  None means
    # an unknown inner trip count — the footprint is then unbounded and the
    # outer loop is left untouched (conservative, like the CORR case).
    iteration_multiplier: int | None = 1

    @property
    def array(self) -> str:
        return self.locality.access.array

    @property
    def lines_per_warp(self) -> int | None:
        if self.iteration_multiplier is None:
            return None
        return self.req_warp * self.iteration_multiplier


@dataclass(frozen=True)
class LoopFootprint:
    """Eq. 8 evaluated for one loop under a given occupancy."""

    loop_id: int
    per_access: tuple[AccessFootprint, ...]
    warps_per_tb: int
    tb_sm: int
    cache_line: int

    @property
    def unbounded(self) -> bool:
        """True when some nested trip count is unknown at compile time."""
        return any(a.lines_per_warp is None for a in self.per_access)

    @property
    def req_per_warp(self) -> int | None:
        """Σ REQ_warp × iteration multiplier over references (lines/warp)."""
        if self.unbounded:
            return None
        return sum(a.lines_per_warp for a in self.per_access)

    @property
    def size_req_lines(self) -> int | None:
        """Eq. 8 in cache lines (None = unbounded)."""
        if self.unbounded:
            return None
        return self.req_per_warp * self.warps_per_tb * self.tb_sm

    @property
    def size_req_bytes(self) -> int | None:
        lines = self.size_req_lines
        return None if lines is None else lines * self.cache_line

    def throttled_lines(self, n: int, m: int) -> int | None:
        """Eq. 9: footprint with warps/TB divided by ``n``, TBs reduced by ``m``."""
        if self.unbounded:
            return None
        active_warps = max(self.warps_per_tb // n, 1)
        active_tbs = max(self.tb_sm - m, 1)
        return self.req_per_warp * active_warps * active_tbs

    @property
    def has_irregular(self) -> bool:
        return any(a.locality.irregular for a in self.per_access)


def loop_footprint(
    loop: LoopRecord,
    localities: list[AccessLocality],
    warps_per_tb: int,
    tb_sm: int,
    block_dim: tuple[int, int, int],
    cache_line: int = 128,
    loops_by_id: dict[int, LoopRecord] | None = None,
    irregular_req: int = 1,
) -> LoopFootprint:
    """Evaluate Eq. 8 for ``loop`` under the given occupancy.

    ``loops_by_id`` (all loops of the kernel, keyed by id) enables the
    nested-trip-count multiplier; without it every access is assumed to sit
    directly in ``loop``'s body (the paper's innermost-loop case).

    ``irregular_req`` is the request count charged to data-dependent
    accesses.  The paper's §4.2 choice is 1 (conservative — never throttle
    more than the evidence supports); the A2 ablation sets it to 32
    (assume worst-case divergence) to show why conservatism matters.
    """
    multidim = block_dim[1] * block_dim[2] > 1
    per_access = []
    for loc in localities:
        if loc.access.index.irregular:
            req = irregular_req
        elif multidim:
            req = requests_per_warp_enumerated(
                loc.access.index, loc.element_size, block_dim, cache_line
            )
            if req is None:
                req = irregular_req
        else:
            req = requests_per_warp(
                loc.inter_thread_elems, loc.element_size, cache_line
            )
        mult = _nest_multiplier(loc.access.loop_id, loop, loops_by_id)
        per_access.append(AccessFootprint(loc, req, mult))
    return LoopFootprint(
        loop_id=loop.loop_id,
        per_access=tuple(per_access),
        warps_per_tb=warps_per_tb,
        tb_sm=tb_sm,
        cache_line=cache_line,
    )


def _nest_multiplier(
    access_loop_id: int,
    loop: LoopRecord,
    loops_by_id: dict[int, LoopRecord] | None,
) -> int | None:
    """Product of trip counts of loops strictly between ``loop`` and the
    access's innermost loop; None when any trip count is unknown."""
    if access_loop_id == loop.loop_id or loops_by_id is None:
        return 1
    mult = 1
    current = access_loop_id
    while current is not None and current != loop.loop_id:
        inner = loops_by_id.get(current)
        if inner is None:
            return None
        trips = inner.trip_count()
        if trips is None:
            return None
        mult *= max(trips, 1)
        current = inner.parent_id
    if current is None:
        return None  # access not actually nested under this loop
    return mult
