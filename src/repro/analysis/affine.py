"""Affine analysis of array index expressions (§4.2, Eq. 5).

Array indexes in GPU kernels are "typically integer linear equations" over
the thread id and loop iterators (paper, §1).  This module abstracts an
index expression into

    ``C_tidx * threadIdx.x + C_tidy * threadIdx.y + ... + Σ C_k * iter_k + c``

tracking one coefficient per symbol.  Anything non-linear (products of two
symbols, divisions, values loaded from memory) poisons the affected symbols
— the form is then *irregular* and the coalescing model falls back to the
paper's conservative ``C_tid = 1``.

Symbols
-------
``threadIdx.x/y/z`` and ``blockIdx.x/y/z`` are predefined.  Loop iterators
enter the environment when :mod:`repro.analysis.loops` walks a kernel.
Kernel scalar parameters are symbols too — warp-uniform and loop-invariant,
they matter only if they appear in a *coefficient* (which makes the form
irregular, since the value is unknown at compile time).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..frontend.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    BoolLit,
    Call,
    Cast,
    Expr,
    FloatLit,
    Ident,
    IntLit,
    MemberRef,
    PostIncDec,
    Ternary,
    UnaryOp,
)

# Canonical symbol names.
TIDX, TIDY, TIDZ = "threadIdx.x", "threadIdx.y", "threadIdx.z"
BIDX, BIDY, BIDZ = "blockIdx.x", "blockIdx.y", "blockIdx.z"

THREAD_SYMBOLS = (TIDX, TIDY, TIDZ)
BLOCK_SYMBOLS = (BIDX, BIDY, BIDZ)

IRREGULAR = "<irregular>"


@dataclass(frozen=True)
class AffineForm:
    """A linear form over named symbols plus a constant.

    ``irregular`` marks the whole form as non-affine; coefficient queries
    then return ``None`` ("unknown at compile time").
    """

    coeffs: tuple[tuple[str, int], ...] = ()
    const: int = 0
    irregular: bool = False

    # -- constructors ------------------------------------------------------
    @staticmethod
    def constant(value: int) -> "AffineForm":
        return AffineForm((), value)

    @staticmethod
    def symbol(name: str, coeff: int = 1) -> "AffineForm":
        return AffineForm(((name, coeff),), 0)

    @staticmethod
    def unknown() -> "AffineForm":
        return AffineForm((), 0, irregular=True)

    # -- queries -------------------------------------------------------------
    def coeff(self, name: str) -> int | None:
        """Coefficient of ``name``; None if the form is irregular."""
        if self.irregular:
            return None
        for sym, c in self.coeffs:
            if sym == name:
                return c
        return 0

    @property
    def is_constant(self) -> bool:
        return not self.irregular and not self.coeffs

    def symbols(self) -> tuple[str, ...]:
        return tuple(s for s, _ in self.coeffs)

    # -- arithmetic ------------------------------------------------------------
    def __add__(self, other: "AffineForm") -> "AffineForm":
        if self.irregular or other.irregular:
            return AffineForm.unknown()
        merged = dict(self.coeffs)
        for sym, c in other.coeffs:
            merged[sym] = merged.get(sym, 0) + c
        coeffs = tuple((s, c) for s, c in sorted(merged.items()) if c != 0)
        return AffineForm(coeffs, self.const + other.const)

    def __neg__(self) -> "AffineForm":
        if self.irregular:
            return self
        return AffineForm(tuple((s, -c) for s, c in self.coeffs), -self.const)

    def __sub__(self, other: "AffineForm") -> "AffineForm":
        return self + (-other)

    def __mul__(self, other: "AffineForm") -> "AffineForm":
        if self.irregular or other.irregular:
            return AffineForm.unknown()
        if self.is_constant:
            k, form = self.const, other
        elif other.is_constant:
            k, form = other.const, self
        else:
            return AffineForm.unknown()  # symbol * symbol: non-linear
        if k == 0:
            return AffineForm.constant(0)
        return AffineForm(
            tuple((s, c * k) for s, c in form.coeffs), form.const * k
        )

    def __str__(self) -> str:  # pragma: no cover - debug aid
        if self.irregular:
            return IRREGULAR
        parts = [f"{c}*{s}" for s, c in self.coeffs]
        parts.append(str(self.const))
        return " + ".join(parts)


@dataclass
class SymbolicEnv:
    """Variable -> AffineForm bindings built while walking a kernel.

    ``block_dim``/``grid_dim`` (when known at 'compile' time, i.e. passed to
    the analysis alongside the launch config) let expressions like
    ``blockIdx.x * blockDim.x + threadIdx.x`` resolve into thread symbols.
    """

    bindings: dict[str, AffineForm] = field(default_factory=dict)
    block_dim: tuple[int, int, int] | None = None
    grid_dim: tuple[int, int, int] | None = None

    def copy(self) -> "SymbolicEnv":
        return SymbolicEnv(dict(self.bindings), self.block_dim, self.grid_dim)

    def bind(self, name: str, form: AffineForm) -> None:
        self.bindings[name] = form

    def poison(self, name: str) -> None:
        self.bindings[name] = AffineForm.unknown()

    def lookup(self, name: str) -> AffineForm:
        if name in self.bindings:
            return self.bindings[name]
        # Unbound names (e.g. scalar kernel parameters) are warp-uniform,
        # loop-invariant unknowns: model them as fresh symbols.
        return AffineForm.symbol(f"param:{name}")

    def builtin(self, base: str, member: str) -> AffineForm:
        name = f"{base}.{member}"
        axis = {"x": 0, "y": 1, "z": 2}.get(member)
        if axis is None:
            return AffineForm.unknown()
        if base == "blockDim":
            if self.block_dim is not None:
                return AffineForm.constant(self.block_dim[axis])
            return AffineForm.symbol(name)
        if base == "gridDim":
            if self.grid_dim is not None:
                return AffineForm.constant(self.grid_dim[axis])
            return AffineForm.symbol(name)
        if base in ("threadIdx", "blockIdx"):
            return AffineForm.symbol(name)
        return AffineForm.unknown()


def analyze_expr(expr: Expr, env: SymbolicEnv) -> AffineForm:
    """Abstract one expression into an :class:`AffineForm`."""
    if isinstance(expr, IntLit):
        return AffineForm.constant(expr.value)
    if isinstance(expr, (FloatLit, BoolLit)):
        return AffineForm.unknown()  # float indexes never happen; be safe
    if isinstance(expr, Ident):
        return env.lookup(expr.name)
    if isinstance(expr, MemberRef):
        if isinstance(expr.base, Ident):
            return env.builtin(expr.base.name, expr.member)
        return AffineForm.unknown()
    if isinstance(expr, BinOp):
        left = analyze_expr(expr.left, env)
        right = analyze_expr(expr.right, env)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op in ("/", "%", "<<", ">>", "&", "|", "^"):
            if left.is_constant and right.is_constant and not (
                left.irregular or right.irregular
            ):
                return _fold_const(expr.op, left.const, right.const)
            if expr.op == "<<" and right.is_constant and not right.irregular:
                return left * AffineForm.constant(1 << right.const)
            return AffineForm.unknown()
        return AffineForm.unknown()
    if isinstance(expr, UnaryOp):
        inner = analyze_expr(expr.operand, env)
        if expr.op == "-":
            return -inner
        return AffineForm.unknown()
    if isinstance(expr, Cast):
        if expr.type.base in ("int", "unsigned int", "long", "short", "char"):
            return analyze_expr(expr.operand, env)
        return AffineForm.unknown()
    if isinstance(expr, ArrayRef):
        # A value loaded from memory: data-dependent, i.e. irregular
        # (this is exactly the BFS case in §4.2).
        return AffineForm.unknown()
    if isinstance(expr, (Call, Ternary, Assign, PostIncDec)):
        return AffineForm.unknown()
    return AffineForm.unknown()


def _fold_const(op: str, a: int, b: int) -> AffineForm:
    try:
        value = {
            "/": lambda: int(a / b) if b else 0,
            "%": lambda: a - int(a / b) * b if b else 0,
            "<<": lambda: a << b,
            ">>": lambda: a >> b,
            "&": lambda: a & b,
            "|": lambda: a | b,
            "^": lambda: a ^ b,
        }[op]()
    except (KeyError, ValueError, OverflowError):
        return AffineForm.unknown()
    return AffineForm.constant(value)


def lane_coefficient(form: AffineForm, block_dim: tuple[int, int, int]) -> int | None:
    """Element distance between *adjacent lanes of one warp* (the paper's
    ``C_tid``).

    Lanes vary ``threadIdx.x`` fastest; in multidimensional TBs a warp can
    wrap into the next ``threadIdx.y`` row, which §4.2 notes is handled by
    enumerating the warp's addresses — see
    :func:`repro.analysis.coalescing.requests_per_warp_enumerated`.
    Returns None for irregular forms.
    """
    if form.irregular:
        return None
    return form.coeff(TIDX)


def iterator_coefficient(form: AffineForm, iterator: str) -> int | None:
    """Element distance between consecutive iterations (the paper's ``C_i``)."""
    if form.irregular:
        return None
    return form.coeff(iterator)
