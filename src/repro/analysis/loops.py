"""Loop discovery and memory-access collection.

Walks a kernel body with a :class:`~repro.analysis.affine.SymbolicEnv`,
recording every loop and the off-chip memory references executed inside it.
This is the front half of §4.2: the back half (coalescing, footprints,
throttling factors) consumes the :class:`LoopRecord` list produced here.

Only *global-pointer* dereferences count as off-chip accesses; ``__shared__``
and per-thread local arrays stay on chip.  References are de-duplicated per
loop by (array, index form, width) — the paper counts the three references in
``tmp[i] += A[i*NX+j] * B[j]`` as three memory instructions, with the
read-modify-write of ``tmp[i]`` counted once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..frontend.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Block,
    Cast,
    DeclStmt,
    DoWhileStmt,
    Expr,
    ExprStmt,
    ForStmt,
    FunctionDef,
    Ident,
    IfStmt,
    IntLit,
    PostIncDec,
    ReturnStmt,
    Stmt,
    SyncthreadsStmt,
    UnaryOp,
    WhileStmt,
    walk_expr,
)
from .affine import AffineForm, SymbolicEnv, analyze_expr


@dataclass(frozen=True)
class MemAccess:
    """One static off-chip memory reference inside a loop."""

    array: str                # root pointer name
    index: AffineForm         # element index form at the reference point
    element_size: int         # bytes per element
    is_read: bool
    is_write: bool
    loop_id: int              # innermost enclosing loop
    loc: object = None        # SourceLocation of the reference, if known

    def key(self) -> tuple:
        # Direction is part of the identity: a read-modify-write (one memory
        # instruction issuing a load *and* a store) must never collapse with
        # a pure load of the same (array, index form, width) triple from a
        # sibling statement — they are distinct references in Eq. 7/8.
        return (self.array, self.index.coeffs, self.index.const,
                self.index.irregular, self.element_size,
                self.is_read, self.is_write)


@dataclass
class LoopRecord:
    """One loop of the kernel, with its iterator and enclosed accesses."""

    loop_id: int
    depth: int                       # 0 = outermost
    parent_id: int | None
    iterator: str | None             # None when the iterator is unrecognized
    step: int | None                 # elements per iteration; None if unknown
    start: AffineForm | None
    bound: AffineForm | None
    stmt: Stmt = field(repr=False, default=None)
    accesses: list[MemAccess] = field(default_factory=list)
    contains_sync: bool = False

    def unique_accesses(self) -> list[MemAccess]:
        seen: dict[tuple, MemAccess] = {}
        for acc in self.accesses:
            seen.setdefault(acc.key(), acc)
        return list(seen.values())

    def trip_count(self) -> int | None:
        """Constant trip-count estimate when start/bound/step all fold."""
        if (self.start is None or self.bound is None or self.step in (None, 0)
                or not self.start.is_constant or not self.bound.is_constant):
            return None
        span = self.bound.const - self.start.const
        trips = -(-span // self.step) if self.step > 0 else -(-(-span) // -self.step)
        return max(trips, 0)


@dataclass
class KernelLoops:
    """All loops of one kernel plus name classification."""

    kernel: FunctionDef
    loops: list[LoopRecord]
    global_pointers: dict[str, int]   # name -> element size
    shared_arrays: set[str]
    local_arrays: set[str]
    flow: object | None = None        # AffineFlow when dataflow mode was used

    def top_level(self) -> list[LoopRecord]:
        return [l for l in self.loops if l.depth == 0]

    def loop(self, loop_id: int) -> LoopRecord:
        for l in self.loops:
            if l.loop_id == loop_id:
                return l
        raise KeyError(f"no loop {loop_id}")


# ---------------------------------------------------------------------------


class _Walker:
    """Collects loops and accesses.

    In *dataflow mode* (``flow`` is an
    :class:`~repro.analysis.dataflow.affineprop.AffineFlow`), index forms are
    resolved against the fixpoint environment snapshot of each evaluation
    site and loop headers come from the flow's induction recognition; the
    walker's own single-pass ``env`` is left untouched.  Without ``flow``
    the legacy one-pass symbolic walk is used.
    """

    def __init__(self, kernel: FunctionDef, env: SymbolicEnv, flow=None):
        self.kernel = kernel
        self.env = env
        self.flow = flow
        self.loops: list[LoopRecord] = []
        self.stack: list[LoopRecord] = []
        self.global_pointers: dict[str, int] = {
            p.name: p.type.element_size
            for p in kernel.params if p.type.is_pointer
        }
        self.shared_arrays: set[str] = set()
        self.local_arrays: set[str] = set()

    # -- statements ------------------------------------------------------
    def walk_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, Block):
            for s in stmt.statements:
                self.walk_stmt(s)
        elif isinstance(stmt, DeclStmt):
            self._walk_decl(stmt)
        elif isinstance(stmt, ExprStmt):
            self._collect(stmt.expr, store_target=None)
            self._apply_assignment(stmt.expr)
        elif isinstance(stmt, IfStmt):
            self._collect(stmt.cond, store_target=None)
            self.walk_stmt(stmt.then)
            if stmt.otherwise is not None:
                self.walk_stmt(stmt.otherwise)
            if self.flow is None:
                # Legacy: anything assigned in either arm is unknown after
                # the join.  (Dataflow mode joins pointwise instead.)
                assigned = _assigned_names(stmt.then)
                if stmt.otherwise is not None:
                    assigned |= _assigned_names(stmt.otherwise)
                for name in assigned:
                    self.env.poison(name)
        elif isinstance(stmt, (ForStmt, WhileStmt, DoWhileStmt)):
            self._walk_loop(stmt)
        elif isinstance(stmt, SyncthreadsStmt):
            for rec in self.stack:
                rec.contains_sync = True
        elif isinstance(stmt, ReturnStmt):
            if stmt.value is not None:
                self._collect(stmt.value, store_target=None)
        # Break/Continue/Empty: nothing to track.

    def _walk_decl(self, stmt: DeclStmt) -> None:
        for d in stmt.declarators:
            if stmt.is_shared:
                self.shared_arrays.add(d.name)
                continue
            if d.array_sizes:
                self.local_arrays.add(d.name)
                continue
            if stmt.type.is_pointer:
                # Pointer locals: treat as an alias of the root array when
                # initialized from one; otherwise unknown.  (Dataflow mode
                # additionally tracks the element offset via PtrState.)
                if d.init is not None:
                    self._collect(d.init, store_target=None)
                    root = _root_pointer(d.init)
                    if root is not None and root in self.global_pointers:
                        self.global_pointers[d.name] = self.global_pointers[root]
                if self.flow is None:
                    self.env.poison(d.name)
                continue
            if d.init is not None:
                self._collect(d.init, store_target=None)
                if self.flow is None:
                    self.env.bind(d.name, analyze_expr(d.init, self.env))
            elif self.flow is None:
                self.env.poison(d.name)

    def _apply_assignment(self, expr: Expr) -> None:
        """Update the symbolic env for scalar assignments (legacy mode)."""
        if self.flow is not None:
            return  # dataflow transfer functions own the environment
        if isinstance(expr, Assign) and isinstance(expr.target, Ident):
            name = expr.target.name
            if expr.op == "=":
                self.env.bind(name, analyze_expr(expr.value, self.env))
            else:
                old = self.env.lookup(name)
                delta = analyze_expr(expr.value, self.env)
                op = expr.op[:-1]
                if op == "+":
                    self.env.bind(name, old + delta)
                elif op == "-":
                    self.env.bind(name, old - delta)
                elif op == "*":
                    self.env.bind(name, old * delta)
                else:
                    self.env.poison(name)
        elif isinstance(expr, PostIncDec) and isinstance(expr.operand, Ident):
            name = expr.operand.name
            one = AffineForm.constant(1 if expr.op == "++" else -1)
            self.env.bind(name, self.env.lookup(name) + one)
        elif isinstance(expr, UnaryOp) and expr.op in ("++", "--") and \
                isinstance(expr.operand, Ident):
            name = expr.operand.name
            one = AffineForm.constant(1 if expr.op == "++" else -1)
            self.env.bind(name, self.env.lookup(name) + one)

    # -- loops --------------------------------------------------------------
    def _walk_loop(self, stmt: ForStmt | WhileStmt | DoWhileStmt) -> None:
        iterator = None
        step = None
        start = None
        bound = None
        body = stmt.body
        if isinstance(stmt, ForStmt):
            if stmt.init is not None:
                self.walk_stmt(stmt.init)
            if self.flow is None:
                iterator, step, start, bound = self._for_header(stmt)
        if self.flow is not None:
            meta = self.flow.loop_meta.get(id(stmt))
            if meta is not None:
                iterator, step = meta.iterator, meta.step
                start, bound = meta.start, meta.bound

        loop_id = len(self.loops)
        rec = LoopRecord(
            loop_id=loop_id,
            depth=len(self.stack),
            parent_id=self.stack[-1].loop_id if self.stack else None,
            iterator=iterator,
            step=step,
            start=start,
            bound=bound,
            stmt=stmt,
        )
        self.loops.append(rec)

        saved: dict[str, AffineForm | None] = {}
        assigned: set[str] = set()
        if self.flow is None:
            assigned = _assigned_names(body)
            inductions = _induction_steps(body) if iterator is not None else {}
            if iterator is not None:
                saved[iterator] = self.env.bindings.get(iterator)
                base = start if start is not None else AffineForm.unknown()
                self.env.bind(
                    iterator,
                    base + AffineForm.symbol(iterator, 1) * AffineForm.constant(step or 1)
                    if step is not None else AffineForm.symbol(iterator),
                )
            # Secondary induction variables: x += c once per iteration means
            # x = x0 + iter * c inside the body.
            for name, inc in inductions.items():
                if name == iterator or name not in assigned:
                    continue
                saved.setdefault(name, self.env.bindings.get(name))
                base = self.env.lookup(name)
                self.env.bind(
                    name, base + AffineForm.symbol(iterator or "?iter") * inc
                )
            # Everything else assigned in the body is loop-variant: poison.
            for name in assigned:
                if name == iterator or name in inductions:
                    continue
                saved.setdefault(name, self.env.bindings.get(name))
                self.env.poison(name)

        self.stack.append(rec)
        # Loop conditions and steps re-execute every iteration: their memory
        # accesses belong to the loop (e.g. BFS's `e < starts[tid+1]`).
        if stmt.cond is not None:
            self._collect(stmt.cond, store_target=None)
        self.walk_stmt(body)
        if isinstance(stmt, ForStmt) and stmt.step is not None:
            self._collect(stmt.step, store_target=None)
        self.stack.pop()

        # After the loop every assigned variable has an unknown final value.
        if self.flow is None:
            for name in set(saved) | assigned:
                self.env.poison(name)

    def _for_header(self, stmt: ForStmt):
        iterator = None
        start = None
        if isinstance(stmt.init, DeclStmt) and len(stmt.init.declarators) == 1:
            d = stmt.init.declarators[0]
            if not d.array_sizes:
                iterator = d.name
                if d.init is not None:
                    start = analyze_expr(d.init, self.env)
        elif isinstance(stmt.init, ExprStmt) and isinstance(stmt.init.expr, Assign):
            a = stmt.init.expr
            if a.op == "=" and isinstance(a.target, Ident):
                iterator = a.target.name
                start = analyze_expr(a.value, self.env)
        step = _step_of(stmt.step, iterator) if iterator else None
        bound = None
        if iterator and isinstance(stmt.cond, BinOp) and \
                stmt.cond.op in ("<", "<=", ">", ">=", "!="):
            if isinstance(stmt.cond.left, Ident) and stmt.cond.left.name == iterator:
                bound = analyze_expr(stmt.cond.right, self.env)
            elif isinstance(stmt.cond.right, Ident) and stmt.cond.right.name == iterator:
                bound = analyze_expr(stmt.cond.left, self.env)
            if bound is not None and stmt.cond.op == "<=":
                bound = bound + AffineForm.constant(1)
        return iterator, step, start, bound

    # -- expression scanning -------------------------------------------------
    def _collect(self, expr: Expr, store_target: Expr | None = None) -> None:
        """Record every off-chip array reference in ``expr``."""
        env = self._env_at(expr)
        store_targets: dict[int, bool] = {}
        for node in walk_expr(expr):
            if isinstance(node, Assign) and isinstance(node.target, ArrayRef):
                store_targets[id(node.target)] = node.op != "="  # compound = RMW
        for node in walk_expr(expr):
            if isinstance(node, ArrayRef):
                if id(node) in store_targets:
                    self._record(node, is_read=store_targets[id(node)],
                                 is_write=True, env=env)
                else:
                    self._record(node, is_read=True, is_write=False, env=env)

    def _env_at(self, expr: Expr) -> SymbolicEnv:
        """Environment in force at an evaluation site (dataflow snapshot when
        available, the walker's single-pass env otherwise)."""
        if self.flow is not None:
            site = self.flow.env_sites.get(id(expr))
            if site is not None:
                return site
        return self.env

    def _record(self, ref: ArrayRef, is_read: bool, is_write: bool,
                env: SymbolicEnv | None = None) -> None:
        env = env if env is not None else self.env
        root, index_expr = _flatten_ref(ref)
        form = None
        if self.flow is not None and not isinstance(ref.base, ArrayRef):
            # Dataflow mode: resolve the base through pointer states, so a
            # strength-reduced `pivot[0]` lands on its root array with the
            # accumulated element offset.
            from .dataflow.affineprop import ptr_state_of

            ps = ptr_state_of(ref.base, env)
            if ps is not None and ps.root is not None:
                root = ps.root
                form = ps.offset + analyze_expr(ref.index, env)
        if root is None or root not in self.global_pointers:
            return
        if not self.stack:
            return  # paper: only loop bodies are optimization targets
        if form is None:
            form = analyze_expr(index_expr, env) if index_expr is not None \
                else AffineForm.unknown()
        access = MemAccess(
            array=root,
            index=form,
            element_size=self.global_pointers[root],
            is_read=is_read,
            is_write=is_write,
            loop_id=self.stack[-1].loop_id,
            loc=ref.loc,
        )
        for rec in self.stack:
            rec.accesses.append(access)


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _flatten_ref(ref: ArrayRef) -> tuple[str | None, Expr | None]:
    """Root pointer name and (single-level) index expression of a reference."""
    if isinstance(ref.base, Ident):
        return ref.base.name, ref.index
    if isinstance(ref.base, BinOp) or isinstance(ref.base, Cast):
        root = _root_pointer(ref.base)
        return root, ref.index  # pointer-arithmetic base: keep index only
    if isinstance(ref.base, ArrayRef):
        # multi-level subscripts (shared arrays) — root only, no flat index
        root, _ = _flatten_ref(ref.base)
        return root, None
    return None, None


def _root_pointer(expr: Expr) -> str | None:
    for node in walk_expr(expr):
        if isinstance(node, Ident):
            return node.name
    return None


def _step_of(step_expr: Expr | None, iterator: str) -> int | None:
    if step_expr is None:
        return None
    if isinstance(step_expr, PostIncDec):
        if isinstance(step_expr.operand, Ident) and step_expr.operand.name == iterator:
            return 1 if step_expr.op == "++" else -1
    if isinstance(step_expr, UnaryOp) and step_expr.op in ("++", "--"):
        if isinstance(step_expr.operand, Ident) and step_expr.operand.name == iterator:
            return 1 if step_expr.op == "++" else -1
    if isinstance(step_expr, Assign) and isinstance(step_expr.target, Ident) \
            and step_expr.target.name == iterator:
        if step_expr.op in ("+=", "-=") and isinstance(step_expr.value, IntLit):
            sign = 1 if step_expr.op == "+=" else -1
            return sign * step_expr.value.value
        if step_expr.op == "=" and isinstance(step_expr.value, BinOp):
            b = step_expr.value
            if b.op in ("+", "-") and isinstance(b.left, Ident) and \
                    b.left.name == iterator and isinstance(b.right, IntLit):
                return b.right.value if b.op == "+" else -b.right.value
    return None


def _assigned_names(stmt: Stmt) -> set[str]:
    """Scalar names assigned anywhere inside ``stmt``."""
    from ..frontend.ast_nodes import expressions_in, statements_in

    names: set[str] = set()
    for s in statements_in(stmt):
        if isinstance(s, DeclStmt):
            for d in s.declarators:
                names.add(d.name)
    for e in _exprs_in(stmt):
        if isinstance(e, Assign) and isinstance(e.target, Ident):
            names.add(e.target.name)
        elif isinstance(e, PostIncDec) and isinstance(e.operand, Ident):
            names.add(e.operand.name)
        elif isinstance(e, UnaryOp) and e.op in ("++", "--") and \
                isinstance(e.operand, Ident):
            names.add(e.operand.name)
    return names


def _exprs_in(stmt: Stmt):
    from ..frontend.ast_nodes import expressions_in

    yield from expressions_in(stmt)


def _induction_steps(body: Stmt) -> dict[str, AffineForm]:
    """Names updated exactly once per iteration by a constant step.

    Recognizes ``x += c``, ``x -= c``, ``x++``, ``x--`` at any nesting depth,
    requiring exactly one update and no other assignment; the constant may be
    any loop-invariant affine form.
    """
    updates: dict[str, list[AffineForm | None]] = {}
    for e in _exprs_in(body):
        if isinstance(e, Assign) and isinstance(e.target, Ident):
            name = e.target.name
            entry = updates.setdefault(name, [])
            if e.op == "+=":
                entry.append(_const_form(e.value))
            elif e.op == "-=":
                f = _const_form(e.value)
                entry.append(-f if f is not None else None)
            else:
                entry.append(None)
        elif isinstance(e, PostIncDec) and isinstance(e.operand, Ident):
            entry = updates.setdefault(e.operand.name, [])
            entry.append(AffineForm.constant(1 if e.op == "++" else -1))
        elif isinstance(e, UnaryOp) and e.op in ("++", "--") and \
                isinstance(e.operand, Ident):
            entry = updates.setdefault(e.operand.name, [])
            entry.append(AffineForm.constant(1 if e.op == "++" else -1))
    out: dict[str, AffineForm] = {}
    for name, entries in updates.items():
        if len(entries) == 1 and entries[0] is not None:
            out[name] = entries[0]
    return out


def _const_form(expr: Expr) -> AffineForm | None:
    if isinstance(expr, IntLit):
        return AffineForm.constant(expr.value)
    if isinstance(expr, UnaryOp) and expr.op == "-" and isinstance(expr.operand, IntLit):
        return AffineForm.constant(-expr.operand.value)
    return None


def find_loops(
    kernel: FunctionDef,
    block_dim: tuple[int, int, int] | None = None,
    grid_dim: tuple[int, int, int] | None = None,
    dataflow: bool = True,
) -> KernelLoops:
    """Walk ``kernel`` and return its loops with collected accesses.

    With ``dataflow=True`` (the default), index forms come from the forward
    dataflow fixpoint of :class:`repro.analysis.dataflow.AffineFlow`, which
    follows intermediate scalars, if-join-equal values, strength-reduced
    secondary inductions and pointer bumps.  Any failure in the dataflow
    engine falls back to the legacy single-pass walk.
    """
    flow = None
    if dataflow:
        try:
            from .dataflow.affineprop import AffineFlow

            flow = AffineFlow(kernel, block_dim=block_dim, grid_dim=grid_dim)
        except Exception:
            flow = None  # degrade to the legacy walk
    env = SymbolicEnv(block_dim=block_dim, grid_dim=grid_dim)
    walker = _Walker(kernel, env, flow=flow)
    walker.walk_stmt(kernel.body)
    return KernelLoops(
        kernel=kernel,
        loops=walker.loops,
        global_pointers=walker.global_pointers,
        shared_arrays=walker.shared_arrays,
        local_arrays=walker.local_arrays,
        flow=flow,
    )
