"""Occupancy model — Equations 1–4 of the paper.

Computes the number of thread blocks concurrently resident on an SM from the
three limiting factors (shared memory, register file, hardware warp slots),
and chooses the shared-memory carveout that maximizes the L1D (Eq. 4 and
§4.1).  The simulator uses the same functions, so the compile-time model and
the simulated hardware agree by construction — as they do on a real GPU,
where both derive from the CUDA occupancy rules.

The paper reads register usage from ``nvcc -v``; our substrate estimates it
from the AST (see :func:`estimate_registers`), documented as a substitution
in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..frontend.ast_nodes import (
    ArrayRef,
    Call,
    DeclStmt,
    FunctionDef,
    expressions_in,
    statements_in,
)
from ..sim.arch import KB, GPUSpec


def shared_usage_bytes(kernel: FunctionDef) -> int:
    """Static ``__shared__`` declarations of one TB, in bytes (8-B aligned)."""
    total = 0
    for stmt in statements_in(kernel.body):
        if isinstance(stmt, DeclStmt) and stmt.is_shared:
            elem = stmt.type.element_size
            for d in stmt.declarators:
                if d.dynamic:
                    continue  # launch-sized: accounted via extra_shared_bytes
                count = 1
                for n in d.array_sizes:
                    count *= n
                total = _align(total, 8) + count * elem
    return total


def estimate_registers(kernel: FunctionDef) -> int:
    """Per-thread register estimate (substitute for ``nvcc -v``).

    Counts parameters (pointers take 2 32-bit registers), local scalar
    declarations, and a temporary-pressure term proportional to the number of
    distinct array references (each needs an address register pair), plus the
    fixed overhead nvcc always allocates.  This is a monotone proxy — exact
    counts only shift Eq. 2's divide.
    """
    regs = 10  # fixed overhead (SP, kernel params base, etc.)
    for p in kernel.params:
        regs += 2 if p.type.is_pointer else 1
    array_refs = 0
    for stmt in statements_in(kernel.body):
        if isinstance(stmt, DeclStmt) and not stmt.is_shared:
            elem_regs = 2 if stmt.type.base in ("double", "long") or stmt.type.is_pointer else 1
            for d in stmt.declarators:
                if d.array_sizes:
                    count = 1
                    for n in d.array_sizes:
                        count *= n
                    # Small local arrays are register-promoted by nvcc.
                    regs += min(count, 16) * elem_regs
                else:
                    regs += elem_regs
    for expr in expressions_in(kernel.body):
        if isinstance(expr, ArrayRef):
            array_refs += 1
        elif isinstance(expr, Call):
            regs += 1
    regs += 2 * min(array_refs, 8)
    return min(regs, 255)


@dataclass(frozen=True)
class OccupancyResult:
    """Resolved per-launch occupancy, one row of the paper's Eq. 1–4."""

    tb_shm: int          # Eq. 1 (HW cap if no shared memory is used)
    tb_reg: int          # Eq. 2
    tb_hw: int           # warp-slot / TB-slot hardware limit
    tb_sm: int           # Eq. 3: min of the above
    warps_per_tb: int
    shared_usage_tb: int     # bytes
    shared_carveout_kb: int  # Eq. 4 / §4.1 choice
    l1d_bytes: int
    registers_per_thread: int

    @property
    def warps_per_sm(self) -> int:
        return self.tb_sm * self.warps_per_tb


def compute_occupancy(
    spec: GPUSpec,
    threads_per_tb: int,
    shared_bytes_tb: int,
    registers_per_thread: int,
    extra_shared_bytes_tb: int = 0,
) -> OccupancyResult:
    """Resolve Eqs. 1–4 for one kernel launch.

    ``extra_shared_bytes_tb`` accounts for dynamic shared memory requested at
    launch (the third ``<<<>>>`` parameter).
    """
    if threads_per_tb <= 0 or threads_per_tb > spec.max_threads_per_tb:
        raise ValueError(f"invalid threads per TB: {threads_per_tb}")
    warps_per_tb = -(-threads_per_tb // spec.warp_size)
    shared_tb = shared_bytes_tb + extra_shared_bytes_tb

    # Eq. 2 — register file constraint (allocation granularity: whole warps).
    regs_tb = registers_per_thread * warps_per_tb * spec.warp_size
    tb_reg = spec.registers_per_sm // max(regs_tb, 1)

    # Hardware constraint: warp slots and TB slots.
    tb_hw = min(spec.max_warps_per_sm // warps_per_tb, spec.max_tbs_per_sm)

    # Eq. 1 — shared memory constraint at the *largest* carveout.
    max_carveout = spec.shared_carveouts_kb[-1] * KB
    tb_shm = (max_carveout // shared_tb) if shared_tb > 0 else tb_hw

    tb_sm = max(min(tb_shm, tb_reg, tb_hw), 1)

    # Eq. 4 — smallest carveout covering the resident TBs' shared memory.
    required = shared_tb * tb_sm
    carveout_kb = spec.min_carveout_for(required)
    return OccupancyResult(
        tb_shm=tb_shm,
        tb_reg=tb_reg,
        tb_hw=tb_hw,
        tb_sm=tb_sm,
        warps_per_tb=warps_per_tb,
        shared_usage_tb=shared_tb,
        shared_carveout_kb=carveout_kb,
        l1d_bytes=spec.l1d_bytes_for_carveout(carveout_kb),
        registers_per_thread=registers_per_thread,
    )


def occupancy_for_kernel(
    spec: GPUSpec,
    kernel: FunctionDef,
    threads_per_tb: int,
    extra_shared_bytes_tb: int = 0,
) -> OccupancyResult:
    """Occupancy straight from a kernel AST (shared usage + register estimate)."""
    return compute_occupancy(
        spec,
        threads_per_tb,
        shared_usage_bytes(kernel),
        estimate_registers(kernel),
        extra_shared_bytes_tb,
    )


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) & ~(alignment - 1)
