"""Whole-kernel CATT analysis: loops → localities → footprints → decisions.

:func:`analyze_kernel` is the compile-time half of CATT (§4.1 + §4.2): it
resolves occupancy (Eqs. 1–4), classifies every loop's memory references,
evaluates footprints (Eq. 8), and searches throttling factors (Eq. 9),
including the carveout cost of TB-level throttling on unified-cache parts.
The transform pipeline (:mod:`repro.transform.pipeline`) consumes the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import BudgetExceededError
from ..frontend.ast_nodes import FunctionDef, TranslationUnit
from ..sim.arch import KB, GPUSpec
from .footprint import LoopFootprint, loop_footprint
from .locality import AccessLocality, classify_loop, loop_has_reuse
from .loops import KernelLoops, LoopRecord, find_loops
from .occupancy import OccupancyResult, compute_occupancy, estimate_registers, shared_usage_bytes
from .throttle import SearchBudget, ThrottleDecision, find_throttle

MAX_SHARED_PER_TB = 96 * KB  # Volta per-TB shared memory limit


@dataclass(frozen=True)
class TBThrottlePlan:
    """How to reach ``target_tbs`` resident TBs via a dummy shared array."""

    target_tbs: int
    carveout_kb: int
    dummy_bytes: int     # extra shared memory to allocate per TB
    l1d_bytes: int


def tb_throttle_plan(
    spec: GPUSpec, existing_shared: int, target_tbs: int
) -> TBThrottlePlan | None:
    """Self-limiting dummy-shared plan pinning residency at ``target_tbs``.

    The dummy array must throttle under Eq. 4's own carveout choice (the
    launcher re-derives occupancy from source), so the per-TB usage is sized
    against the *largest* carveout: ``target_tbs + 1`` TBs must not fit even
    at 96 KB — exactly the paper's Fig. 5 (48 KB dummy → 2 resident TBs).
    Returns None when no dummy size can express the limit.
    """
    if target_tbs < 1:
        return None
    cap = spec.shared_carveouts_kb[-1] * KB
    hi = cap // target_tbs                      # usage still fitting N TBs
    lo = cap // (target_tbs + 1) + 1            # usage excluding N+1 TBs
    usage = _align(max(existing_shared, lo), 8)
    if usage > hi or usage > MAX_SHARED_PER_TB:
        return None
    carveout = spec.min_carveout_for(usage * target_tbs)
    return TBThrottlePlan(
        target_tbs=target_tbs,
        carveout_kb=carveout,
        dummy_bytes=usage - existing_shared,
        l1d_bytes=spec.l1d_bytes_for_carveout(carveout),
    )


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) & ~(alignment - 1)


@dataclass
class LoopAnalysis:
    """Everything CATT derived about one loop."""

    record: LoopRecord
    localities: list[AccessLocality]
    has_reuse: bool
    footprint: LoopFootprint
    decision: ThrottleDecision

    @property
    def loop_id(self) -> int:
        return self.record.loop_id


@dataclass
class KernelAnalysis:
    """The CATT compile-time report for one kernel launch configuration."""

    kernel: FunctionDef
    occupancy: OccupancyResult
    loops: list[LoopAnalysis]
    kernel_loops: KernelLoops
    spec: GPUSpec
    block_dim: tuple[int, int, int]
    budget_exhausted_loops: list[int] = field(default_factory=list)

    @property
    def budget_exhausted(self) -> bool:
        return bool(self.budget_exhausted_loops)

    @property
    def tb_m(self) -> int:
        """Kernel-wide TB reduction: the max M any loop asked for (§4.3 —
        the dummy shared array throttles the whole kernel)."""
        return max((l.decision.m for l in self.loops
                    if l.decision.fits and l.decision.needed), default=0)

    @property
    def throttled_loops(self) -> list[LoopAnalysis]:
        return [l for l in self.loops if l.decision.throttles]

    def loop(self, loop_id: int) -> LoopAnalysis:
        for l in self.loops:
            if l.loop_id == loop_id:
                return l
        raise KeyError(f"no loop {loop_id}")

    def baseline_tlp(self) -> tuple[int, int]:
        return (self.occupancy.warps_per_tb, self.occupancy.tb_sm)

    def chosen_tlp(self, loop_id: int) -> tuple[int, int]:
        """Table-3 style (#warps_TB, #TBs) the loop will run at."""
        return self.loop(loop_id).decision.tlp


def _as_dim3(value) -> tuple[int, int, int]:
    if isinstance(value, int):
        return (value, 1, 1)
    value = tuple(value)
    return (value + (1, 1, 1))[:3]


def analyze_kernel(
    unit: TranslationUnit,
    kernel_name: str,
    block,
    spec: GPUSpec,
    grid=None,
    irregular_req: int = 1,
    budget: SearchBudget | None = None,
) -> KernelAnalysis:
    """Run the full CATT static analysis for one kernel + launch config.

    ``irregular_req`` overrides the conservative per-warp request count for
    data-dependent accesses (§4.2 uses 1; the A2 ablation uses 32).
    ``budget`` caps the throttle search; a loop whose search runs out of
    budget degrades to "left untouched" (the paper's CORR posture) with
    ``budget_exhausted`` set on the analysis.
    """
    from ..obs.trace import span

    kernel = unit.kernel(kernel_name)
    block3 = _as_dim3(block)
    grid3 = _as_dim3(grid) if grid is not None else None
    threads = block3[0] * block3[1] * block3[2]

    shared0 = shared_usage_bytes(kernel)
    with span("analysis.occupancy", kernel=kernel_name) as sp:
        occ = compute_occupancy(
            spec, threads, shared0, estimate_registers(kernel)
        )
        if grid3 is not None:
            # Residency cannot exceed the grid's per-SM share (e.g. the
            # paper's ATAX launches 4 TBs per SM even though occupancy
            # allows more).
            from dataclasses import replace

            total_tbs = grid3[0] * grid3[1] * grid3[2]
            share = -(-total_tbs // spec.num_sms)
            if share < occ.tb_sm:
                occ = replace(occ, tb_sm=max(share, 1))
        sp.set(warps_per_tb=occ.warps_per_tb, tb_sm=occ.tb_sm)
    with span("analysis.loops", kernel=kernel_name) as sp:
        kernel_loops = find_loops(kernel, block_dim=block3, grid_dim=grid3)
        sp.set(loops=len(kernel_loops.loops))

    line = spec.cache_line
    l1d_lines_base = occ.l1d_bytes // line

    def l1d_lines_for_tbs(tbs: int) -> int:
        if tbs >= occ.tb_sm:
            return l1d_lines_base
        plan = tb_throttle_plan(spec, shared0, tbs)
        if plan is None:
            return 0
        return plan.l1d_bytes // line

    analyses: list[LoopAnalysis] = []
    budget_hit: list[int] = []
    loops_by_id = {l.loop_id: l for l in kernel_loops.loops}
    for rec in kernel_loops.loops:
        with span("analysis.footprint", kernel=kernel_name,
                  loop=rec.loop_id) as sp:
            localities = classify_loop(rec, line)
            reuse = loop_has_reuse(localities)
            fp = loop_footprint(
                rec, localities, occ.warps_per_tb, occ.tb_sm, block3, line,
                loops_by_id=loops_by_id, irregular_req=irregular_req,
            )
            sp.set(reuse=reuse, size_req_lines=fp.size_req_lines)
        with span("analysis.throttle", kernel=kernel_name,
                  loop=rec.loop_id) as sp:
            if reuse and localities:
                try:
                    decision = find_throttle(
                        fp, l1d_lines_for_tbs, budget=budget
                    )
                except BudgetExceededError:
                    # Out of search budget: leave the loop untouched, like
                    # the CORR case — never half-apply a throttling decision.
                    budget_hit.append(rec.loop_id)
                    sp.set(budget_exhausted=True)
                    decision = ThrottleDecision(
                        loop_id=rec.loop_id, n=1, m=0,
                        warps_per_tb=occ.warps_per_tb, tb_sm=occ.tb_sm,
                        size_req_lines=fp.size_req_lines,
                        l1d_lines=l1d_lines_base, fits=False, needed=True,
                    )
            else:
                # No reuse to protect (or no off-chip accesses): never
                # throttle.
                decision = ThrottleDecision(
                    loop_id=rec.loop_id, n=1, m=0,
                    warps_per_tb=occ.warps_per_tb, tb_sm=occ.tb_sm,
                    size_req_lines=fp.size_req_lines,
                    l1d_lines=l1d_lines_base, fits=True, needed=False,
                )
            sp.set(needed=decision.needed, fits=decision.fits,
                   n=decision.n, m=decision.m)
        analyses.append(LoopAnalysis(rec, localities, reuse, fp, decision))

    return KernelAnalysis(
        kernel=kernel,
        occupancy=occ,
        loops=analyses,
        kernel_loops=kernel_loops,
        spec=spec,
        block_dim=block3,
        budget_exhausted_loops=budget_hit,
    )
