"""Locality classification (§3.1 and Eq. 6).

For every memory reference in a loop, derive the paper's two distances:

* **intra-thread distance** — ``C_i``, the element distance between the
  addresses a single thread touches on consecutive iterations.  Cache
  locality exists iff the byte distance fits inside a cache line (Eq. 6).
* **inter-thread distance** — ``C_tid``, the element distance between
  adjacent lanes of a warp; it governs coalescing (Eq. 7).

``None`` distances mean "unknown at compile time" (irregular index), which
§4.2 treats conservatively.
"""

from __future__ import annotations

from dataclasses import dataclass

from .affine import TIDX
from .loops import LoopRecord, MemAccess


@dataclass(frozen=True)
class AccessLocality:
    """Classified locality of one static memory reference."""

    access: MemAccess
    inter_thread_elems: int | None   # C_tid (elements); None = irregular
    intra_thread_elems: int | None   # C_i   (elements); None = irregular
    cache_line: int

    @property
    def element_size(self) -> int:
        return self.access.element_size

    @property
    def inter_thread_bytes(self) -> int | None:
        c = self.inter_thread_elems
        return None if c is None else abs(c) * self.element_size

    @property
    def intra_thread_bytes(self) -> int | None:
        c = self.intra_thread_elems
        return None if c is None else abs(c) * self.element_size

    @property
    def irregular(self) -> bool:
        return self.inter_thread_elems is None

    @property
    def has_intra_thread_locality(self) -> bool:
        """Eq. 6: the fetched line is re-accessed on the next iteration."""
        d = self.intra_thread_bytes
        return d is not None and d <= self.cache_line

    @property
    def has_inter_thread_locality(self) -> bool:
        """Adjacent lanes land in the same cache line (coalescable)."""
        d = self.inter_thread_bytes
        return d is not None and d < self.cache_line


def classify_access(access: MemAccess, loop: LoopRecord,
                    cache_line: int = 128) -> AccessLocality:
    """Distances of ``access`` relative to ``loop``'s iterator."""
    form = access.index
    if form.irregular:
        inter = intra = None
    else:
        inter = form.coeff(TIDX)
        if loop.iterator is None:
            intra = None
        else:
            intra = form.coeff(loop.iterator)
    return AccessLocality(access, inter, intra, cache_line)


def classify_loop(loop: LoopRecord, cache_line: int = 128) -> list[AccessLocality]:
    """Classify the loop's de-duplicated references."""
    return [classify_access(a, loop, cache_line) for a in loop.unique_accesses()]


def loop_has_reuse(localities: list[AccessLocality]) -> bool:
    """§4.2: footprints matter only 'for loops where cache locality presents'.

    A loop qualifies when at least one reference re-touches a fetched line —
    either across iterations (intra-thread, Eq. 6) or across lanes
    (inter-thread coalescing locality).  Irregular references qualify too:
    the paper still throttles BFS/CFD loops, just conservatively.
    """
    for loc in localities:
        if loc.irregular:
            return True
        if loc.has_intra_thread_locality or loc.has_inter_thread_locality:
            return True
    return False
