"""repro — reproduction of "Compiler-Assisted GPU Thread Throttling for
Reduced Cache Contention" (Kim et al., ICPP 2019).

Layers
------
* :mod:`repro.frontend` — CUDA-C subset parser / emitter;
* :mod:`repro.analysis` — CATT static analysis (Eqs. 1-9);
* :mod:`repro.transform` — warp-level (Fig. 4) and TB-level (Fig. 5)
  throttling transforms and the :func:`catt_compile` pipeline;
* :mod:`repro.sim` — the GPU simulator substrate (single-SM, event-driven);
* :mod:`repro.runtime` — PyCUDA-style host API (`Device`, `DeviceArray`);
* :mod:`repro.obs` — tracing/metrics/run-manifest observability layer;
* :mod:`repro.api` — the :class:`Session` facade tying it all together;
* :mod:`repro.workloads` — the Table-2 benchmark suite, scaled for simulation;
* :mod:`repro.baselines` — BFTT / Best-SWL / DynCTA-style comparators;
* :mod:`repro.experiments` — regenerators for every table and figure.

Quickstart::

    from repro import Session, SimOptions

    sess = Session("max", SimOptions(engine="compiled", dedup=True))
    unit = sess.compile(CUDA_SOURCE)
    comp = sess.catt(unit, {"my_kernel": (grid, block)})
    result = sess.launch(comp.unit, "my_kernel", grid, block, args=[...])
    print(result.cycles, result.l1_hit_rate)

``SimOptions`` is the single source of truth for the engine/dedup/cache
knobs; the legacy ``REPRO_SIM_ENGINE`` / ``REPRO_SIM_DEDUP`` / ``REPRO_CACHE``
environment variables still work through a deprecation shim.  Enable
``SimOptions(trace=True, metrics=True)`` (or run ``catt profile <app>``) to
collect a Perfetto-loadable trace and a signed run manifest — see
docs/OBSERVABILITY.md.

The same pipeline is available as a long-running service (``catt serve``):
:class:`~repro.service.ServiceClient` speaks typed
:mod:`repro.service.protocol` requests to a shared server that coalesces
identical requests, batches simulation cells into supervised sweeps, and
persists results in the crash-safe sharded cache — see docs/SERVICE.md.
"""

from .analysis import KernelAnalysis, analyze_kernel, format_analysis
from .api import Session
from .frontend import emit, parse, parse_kernel
from .options import SimOptions, use_options
from .runtime import Device, DeviceArray
from .service import (
    AnalyzeRequest,
    AnalyzeResponse,
    CattRequest,
    CattResponse,
    CompileRequest,
    CompileResponse,
    RunAppRequest,
    RunAppResponse,
    ServiceClient,
    ServiceError,
)
from .sim import TITAN_V, TITAN_V_32K, TITAN_V_SIM, TITAN_V_SIM_32K, GPUSpec
from .transform import CattCompilation, catt_compile, force_throttle

__version__ = "1.1.0"

__all__ = [
    "KernelAnalysis",
    "analyze_kernel",
    "format_analysis",
    "emit",
    "parse",
    "parse_kernel",
    "Device",
    "DeviceArray",
    "Session",
    "SimOptions",
    "use_options",
    "TITAN_V",
    "TITAN_V_32K",
    "TITAN_V_SIM",
    "TITAN_V_SIM_32K",
    "GPUSpec",
    "CattCompilation",
    "catt_compile",
    "force_throttle",
    "ServiceClient",
    "ServiceError",
    "CompileRequest",
    "CompileResponse",
    "AnalyzeRequest",
    "AnalyzeResponse",
    "CattRequest",
    "CattResponse",
    "RunAppRequest",
    "RunAppResponse",
    "__version__",
]
