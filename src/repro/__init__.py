"""repro — reproduction of "Compiler-Assisted GPU Thread Throttling for
Reduced Cache Contention" (Kim et al., ICPP 2019).

Layers
------
* :mod:`repro.frontend` — CUDA-C subset parser / emitter;
* :mod:`repro.analysis` — CATT static analysis (Eqs. 1-9);
* :mod:`repro.transform` — warp-level (Fig. 4) and TB-level (Fig. 5)
  throttling transforms and the :func:`catt_compile` pipeline;
* :mod:`repro.sim` — the GPU simulator substrate (single-SM, event-driven);
* :mod:`repro.runtime` — PyCUDA-style host API (`Device`, `DeviceArray`);
* :mod:`repro.workloads` — the Table-2 benchmark suite, scaled for simulation;
* :mod:`repro.baselines` — BFTT / Best-SWL / DynCTA-style comparators;
* :mod:`repro.experiments` — regenerators for every table and figure.

Quickstart::

    from repro import Device, catt_compile, TITAN_V_SIM
    dev = Device(TITAN_V_SIM)
    unit = dev.compile(CUDA_SOURCE)
    comp = catt_compile(unit, {"my_kernel": (grid, block)}, TITAN_V_SIM)
    result = dev.launch(comp.unit, "my_kernel", grid, block, args=[...])
"""

from .analysis import KernelAnalysis, analyze_kernel, format_analysis
from .frontend import emit, parse, parse_kernel
from .runtime import Device, DeviceArray
from .sim import TITAN_V, TITAN_V_32K, TITAN_V_SIM, TITAN_V_SIM_32K, GPUSpec
from .transform import CattCompilation, catt_compile, force_throttle

__version__ = "1.0.0"

__all__ = [
    "KernelAnalysis",
    "analyze_kernel",
    "format_analysis",
    "emit",
    "parse",
    "parse_kernel",
    "Device",
    "DeviceArray",
    "TITAN_V",
    "TITAN_V_32K",
    "TITAN_V_SIM",
    "TITAN_V_SIM_32K",
    "GPUSpec",
    "CattCompilation",
    "catt_compile",
    "force_throttle",
    "__version__",
]
