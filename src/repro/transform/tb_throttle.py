"""TB-level throttling transform (Fig. 5).

Limits the number of concurrently resident TBs by inflating the kernel's
shared-memory usage with a dummy ``__shared__`` array, plus one write so the
allocation is not dead (paper: "We add a simple write command to shared
memory so that the compiler does not remove the shared memory allocation").

The dummy is sized by :func:`repro.analysis.kernel_info.tb_throttle_plan` to
be *self-limiting*: ``target + 1`` TBs must not fit even at the largest
carveout, because occupancy is re-derived from the source at launch (Eq. 4).
This is exactly the paper's Fig. 5 (48 KB per TB → 2 resident TBs), and it is
why CATT prefers warp-level throttling — the dummy costs L1D capacity on a
unified-cache part (§4.3's "constraints on TB-level throttling").
"""

from __future__ import annotations

from ..frontend.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Block,
    CType,
    Declarator,
    DeclStmt,
    ExprStmt,
    FunctionDef,
    Ident,
    IntLit,
    MemberRef,
)
from .utils import with_body

DUMMY_NAME = "__catt_dummy_shared"


def add_dummy_shared(kernel: FunctionDef, dummy_bytes: int) -> FunctionDef:
    """Prepend a ``dummy_bytes``-byte ``__shared__ float`` array + one write."""
    if dummy_bytes <= 0:
        return kernel
    elems = max(-(-dummy_bytes // 4), 1)
    decl = DeclStmt(
        CType("float"),
        (Declarator(DUMMY_NAME, (elems,)),),
        is_shared=True,
    )
    tidx = MemberRef(Ident("threadIdx"), "x")
    # threadIdx.x % elems keeps the keep-alive write in bounds for any TB size.
    index = BinOp("%", tidx, IntLit(elems))
    write = ExprStmt(Assign("=", ArrayRef(Ident(DUMMY_NAME), index), IntLit(0)))
    new_body = Block((decl, write) + kernel.body.statements, kernel.body.loc)
    return with_body(kernel, new_body)


def dummy_bytes_in(kernel: FunctionDef) -> int:
    """Bytes of CATT dummy shared memory already present (for idempotence)."""
    for stmt in kernel.body.statements:
        if isinstance(stmt, DeclStmt) and stmt.is_shared:
            for d in stmt.declarators:
                if d.name == DUMMY_NAME:
                    count = 1
                    for nmb in d.array_sizes:
                        count *= nmb
                    return count * stmt.type.element_size
    return 0
