"""Warp-level throttling transform (Fig. 4).

Splits a throttled loop into ``N`` copies, each guarded so that only one
group of ``#Warps_TB / N`` warps executes it, with ``__syncthreads()``
barriers serializing the groups::

    if (wid >= 0 && wid < G)  { <loop> }  __syncthreads();
    if (wid >= G && wid < 2G) { <loop> }  __syncthreads();
    ...

The guard operates at warp granularity (``wid = linear_tid / 32``), so the
transformation adds no intra-warp control divergence (§4.3).
"""

from __future__ import annotations

from ..errors import WarpSplitError
from ..frontend.ast_nodes import (
    BinOp,
    Block,
    FunctionDef,
    IfStmt,
    IntLit,
    Stmt,
    SyncthreadsStmt,
)
from .utils import linear_warp_id_expr, replace_stmt, with_body


def split_loop_for_warp_groups(
    kernel: FunctionDef,
    loop_stmt: Stmt,
    n: int,
    warps_per_tb: int,
    block_dim: tuple[int, int, int],
    warp_size: int = 32,
) -> FunctionDef:
    """Return ``kernel`` with ``loop_stmt`` split into ``n`` warp groups.

    ``loop_stmt`` must be a statement object from ``kernel``'s body (identity
    matching).  ``n`` must divide ``warps_per_tb``; violations raise
    :class:`repro.errors.WarpSplitError` (a ``ValueError`` subclass).
    """
    if n <= 1:
        return kernel
    if warps_per_tb % n != 0:
        raise WarpSplitError(f"N={n} does not divide warps/TB={warps_per_tb}")
    group = warps_per_tb // n
    wid = linear_warp_id_expr(block_dim, warp_size)
    pieces: list[Stmt] = []
    for g in range(n):
        lo, hi = g * group, (g + 1) * group
        cond = BinOp(
            "&&",
            BinOp(">=", wid, IntLit(lo)),
            BinOp("<", wid, IntLit(hi)),
        )
        pieces.append(IfStmt(cond, _as_block(loop_stmt)))
        pieces.append(SyncthreadsStmt())
    try:
        new_body = replace_stmt(kernel.body, loop_stmt, pieces)
    except ValueError as exc:
        # The loop object is no longer in the body — an earlier transform
        # (e.g. tiling) restructured it.
        raise WarpSplitError(str(exc)) from exc
    assert isinstance(new_body, Block)
    return with_body(kernel, new_body)


def _as_block(stmt: Stmt) -> Block:
    return stmt if isinstance(stmt, Block) else Block((stmt,))
