"""Reduction tiling — the paper's future-work case, implemented.

§5.1 on CORR: "the L1D footprint cannot be reduced to fit the L1D capacity
even with the minimum degree of TLP.  In such case, kernels and loops need
to be split into smaller pieces, which requires algorithm changes in
original code.  CATT passes such cases without optimization."

This module performs that split for the common *reduction* shape::

    for (j = ...) {                       for (j = ...) { out[j] = 0; }   (init)
        float s = 0;                      for (ii = 0; ii < N; ii += T)
        for (i = 0; i < N; i++)   ==>         for (j = ...) {
            s += f(i, j);                         float s = 0;
        out[j] = s;                               for (i = ii; i < ii+T && i < N; i++)
    }                                                 s += f(i, j);
                                                  out[j] += s;
                                              }

Strip-mining the inner sweep bounds the per-``j`` footprint to ``T`` lines,
so the outer loop's cross-iteration reuse becomes exploitable; the tile size
is chosen exactly like Eq. 9 chooses N — largest T whose footprint fits the
L1D.  Floating-point sums re-associate across tiles (documented; tests use
tolerances).  Enabled via ``catt_compile(..., enable_tiling=True)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..frontend.ast_nodes import (
    Assign,
    BinOp,
    Block,
    CType,
    Declarator,
    DeclStmt,
    Expr,
    ExprStmt,
    FloatLit,
    ForStmt,
    FunctionDef,
    Ident,
    IntLit,
    Stmt,
)
from .utils import replace_stmt, with_body

TILE_VAR = "__catt_tile"


@dataclass
class ReductionPattern:
    """The recognized shape inside an outer loop's body."""

    outer: ForStmt
    acc_decl: DeclStmt          # float s = 0;
    acc_name: str
    inner: ForStmt              # for (i = 0; i < N; i++) s += ...
    inner_iter: str
    inner_bound: Expr
    stores: list[ExprStmt]      # out[...] = s;


def find_reduction_pattern(outer: ForStmt) -> ReductionPattern | None:
    """Match the init/accumulate/store shape in ``outer``'s body."""
    body = outer.body
    if not isinstance(body, Block):
        return None
    stmts = list(body.statements)
    # Locate: DeclStmt (scalar float init 0) -> ForStmt -> store(s) of it.
    for idx, stmt in enumerate(stmts):
        if not (isinstance(stmt, DeclStmt) and len(stmt.declarators) == 1):
            continue
        d = stmt.declarators[0]
        if d.array_sizes or d.init is None:
            continue
        if not (isinstance(d.init, (IntLit, FloatLit)) and
                float(getattr(d.init, "value", 1)) == 0.0):
            continue
        if idx + 1 >= len(stmts) or not isinstance(stmts[idx + 1], ForStmt):
            continue
        inner = stmts[idx + 1]
        if not _accumulates_only(inner, d.name):
            continue
        header = _inner_header(inner)
        if header is None:
            continue
        inner_iter, inner_bound = header
        stores = []
        ok = True
        for rest in stmts[idx + 2:]:
            if (isinstance(rest, ExprStmt) and isinstance(rest.expr, Assign)
                    and rest.expr.op == "=" and _is_plain_acc(rest.expr.value, d.name)):
                stores.append(rest)
            else:
                ok = False
                break
        if ok and stores and idx == 0:
            return ReductionPattern(
                outer, stmt, d.name, inner, inner_iter, inner_bound, stores
            )
    return None


def _accumulates_only(inner: ForStmt, acc: str) -> bool:
    """The inner body only updates ``acc`` via += (plus reads)."""
    if not isinstance(inner.body, Block):
        body_stmts = (inner.body,)
    else:
        body_stmts = inner.body.statements
    saw_acc = False
    for s in body_stmts:
        if not isinstance(s, ExprStmt):
            return False
        e = s.expr
        if isinstance(e, Assign) and isinstance(e.target, Ident) \
                and e.target.name == acc and e.op == "+=":
            saw_acc = True
            continue
        return False
    return saw_acc


def _inner_header(inner: ForStmt) -> tuple[str, Expr] | None:
    """(iterator, bound) for a canonical ``for (int i = 0; i < N; i++)``."""
    if not (isinstance(inner.init, DeclStmt) and len(inner.init.declarators) == 1):
        return None
    d = inner.init.declarators[0]
    if d.array_sizes or not isinstance(d.init, IntLit) or d.init.value != 0:
        return None
    cond = inner.cond
    if not (isinstance(cond, BinOp) and cond.op == "<"
            and isinstance(cond.left, Ident) and cond.left.name == d.name):
        return None
    return d.name, cond.right


def _is_plain_acc(expr: Expr, acc: str) -> bool:
    return isinstance(expr, Ident) and expr.name == acc


def tile_reduction(kernel: FunctionDef, pattern: ReductionPattern,
                   tile: int) -> FunctionDef:
    """Apply the strip-mining transform with tile size ``tile``."""
    outer = pattern.outer
    acc = pattern.acc_name
    it = pattern.inner_iter

    # 1. Init prologue: clone of the outer loop writing zeros.
    init_stores = tuple(
        ExprStmt(Assign("=", s.expr.target, FloatLit(0.0, "0.0f")))
        for s in pattern.stores
    )
    init_loop = ForStmt(outer.init, outer.cond, outer.step,
                        Block(init_stores))

    # 2. Main nest: tile loop around a rebuilt outer loop whose inner sweep
    #    covers [tile_base, min(tile_base + T, N)) and whose stores are +=.
    tile_base = Ident(TILE_VAR)
    new_inner_init = DeclStmt(CType("int"), (Declarator(it, (), tile_base),))
    new_inner_cond = BinOp(
        "&&",
        BinOp("<", Ident(it), BinOp("+", tile_base, IntLit(tile))),
        BinOp("<", Ident(it), pattern.inner_bound),
    )
    new_inner = ForStmt(new_inner_init, new_inner_cond, pattern.inner.step,
                        pattern.inner.body)
    new_stores = tuple(
        ExprStmt(Assign("+=", s.expr.target, s.expr.value))
        for s in pattern.stores
    )
    new_outer_body = Block((pattern.acc_decl, new_inner) + new_stores)
    new_outer = ForStmt(outer.init, outer.cond, outer.step, new_outer_body)
    tile_loop = ForStmt(
        DeclStmt(CType("int"), (Declarator(TILE_VAR, (), IntLit(0)),)),
        BinOp("<", tile_base, pattern.inner_bound),
        Assign("+=", tile_base, IntLit(tile)),
        Block((new_outer,)),
    )

    new_body = replace_stmt(kernel.body, outer, [init_loop, tile_loop])
    assert isinstance(new_body, Block)
    return with_body(kernel, new_body)


def choose_tile(
    req_per_warp_direct: int,
    req_per_warp_per_trip: int,
    inner_trips: int | None,
    warps: int,
    tbs: int,
    l1d_lines: int,
    min_tile: int = 8,
) -> int | None:
    """Largest power-of-two tile whose footprint fits the L1D (Eq.-9 style).

    The outer-loop footprint with tile T is
    ``(direct + per_trip * T) * warps * tbs`` lines.
    """
    budget = l1d_lines // max(warps * tbs, 1) - req_per_warp_direct
    if budget <= 0:
        return None
    max_t = budget // max(req_per_warp_per_trip, 1)
    if max_t < min_tile:
        return None
    t = min_tile
    while t * 2 <= max_t and (inner_trips is None or t * 2 < inner_trips):
        t *= 2
    if inner_trips is not None and t >= inner_trips:
        return None  # tiling wouldn't change anything
    return t


def try_tile_unresolvable(
    kernel: FunctionDef,
    loop_analysis,
    l1d_lines: int,
) -> tuple[FunctionDef, int] | None:
    """Attempt the future-work transform on one unresolvable loop.

    Returns (new kernel, tile size) or None when the loop does not match the
    reduction shape / no tile fits.
    """
    rec = loop_analysis.record
    if not isinstance(rec.stmt, ForStmt):
        return None
    pattern = find_reduction_pattern(rec.stmt)
    if pattern is None:
        return None
    fp = loop_analysis.footprint
    direct = 0
    per_trip = 0
    inner_trips = None
    for af in fp.per_access:
        if af.iteration_multiplier is None:
            return None
        if af.iteration_multiplier <= 1:
            direct += af.req_warp
        else:
            per_trip += af.req_warp
            inner_trips = af.iteration_multiplier
    if per_trip == 0:
        return None
    tile = choose_tile(direct, per_trip, inner_trips,
                       fp.warps_per_tb, fp.tb_sm, l1d_lines)
    if tile is None:
        return None
    return tile_reduction(kernel, pattern, tile), tile
