"""Structured diagnostics for the resilient CATT compilation driver.

CATT's contract is that it must never make a kernel *wrong*, and §4.2 already
bakes graceful degradation into the design (the CORR case: when even minimum
TLP cannot fit the L1D, the loop is left untouched).  The resilient driver
extends that contract to *failures*: any stage that cannot complete records a
:class:`Diagnostic` and falls back to the untransformed kernel instead of
aborting the translation unit.

Error-code catalogue (see docs/ROBUSTNESS.md):

=========================  ========  =====================================
code                       severity  meaning
=========================  ========  =====================================
CATT-E-FRONTEND            error     kernel missing / outside the CUDA subset
CATT-E-ANALYSIS            error     static analysis crashed; kernel untouched
CATT-E-TRANSFORM           error     a rewrite failed; loop/kernel untouched
CATT-E-SIM                 error     simulation of an (app, scheme) cell failed
CATT-E-INTERNAL            error     unexpected exception (a real bug — report)
CATT-E-DIVERGENT-BARRIER   error     __syncthreads() under a thread-dependent
                                     guard or bound (UB on hardware)
CATT-E-SHARED-RACE         error     (retired) source-order shared-race
                                     heuristic; kept for baseline compat
CATT-E-PROVED-RACE         error     barrier-interval analysis proved a
                                     cross-thread shared-memory race
CATT-W-RACE-UNKNOWN        warning   a shared (array, interval) pair could not
                                     be classified safe or racy
CATT-W-SEARCH              warning   throttle search degraded for one loop
CATT-W-BUDGET              warning   analysis budget exhausted; partial results
CATT-W-REVERTED            warning   validation gate reverted a transform
CATT-W-IRREGULAR-INDEX     warning   data-dependent index; conservative
                                     C_tid = 1 assumed (§4.2)
CATT-W-UNCOALESCED         warning   fully diverged reference (REQ_warp = 32)
CATT-I-SKIP-LOOP           info      loop skipped (restructured by a prior pass)
CATT-I-VALIDATE-SKIP       info      validation inconclusive; transform kept
CATT-I-STATIC-SAFE         info      transform statically proven safe; the
                                     differential gate was skipped
=========================  ========  =====================================
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

SEV_ERROR = "error"
SEV_WARNING = "warning"
SEV_INFO = "info"

# Stages, in pipeline order.  "budget" and "validate" are driver-internal
# stages; the four fault-injection boundaries are frontend/analysis/
# transform/sim (:mod:`repro.testing.faults`).
STAGES = ("frontend", "analysis", "transform", "validate", "sim", "budget")

E_FRONTEND = "CATT-E-FRONTEND"
E_ANALYSIS = "CATT-E-ANALYSIS"
E_TRANSFORM = "CATT-E-TRANSFORM"
E_SIM = "CATT-E-SIM"
E_INTERNAL = "CATT-E-INTERNAL"
E_DIVERGENT_BARRIER = "CATT-E-DIVERGENT-BARRIER"
E_SHARED_RACE = "CATT-E-SHARED-RACE"   # retired; see E_PROVED_RACE
E_PROVED_RACE = "CATT-E-PROVED-RACE"
W_RACE_UNKNOWN = "CATT-W-RACE-UNKNOWN"
W_SEARCH = "CATT-W-SEARCH"
W_BUDGET = "CATT-W-BUDGET"
W_REVERTED = "CATT-W-REVERTED"
W_IRREGULAR_INDEX = "CATT-W-IRREGULAR-INDEX"
W_UNCOALESCED = "CATT-W-UNCOALESCED"
I_SKIP_LOOP = "CATT-I-SKIP-LOOP"
I_VALIDATE_SKIP = "CATT-I-VALIDATE-SKIP"
I_STATIC_SAFE = "CATT-I-STATIC-SAFE"


@dataclass(frozen=True)
class Diagnostic:
    """One structured degradation record."""

    code: str                       # CATT-{E,W,I}-* from the catalogue above
    stage: str                      # member of STAGES
    message: str
    kernel: str | None = None
    loop_id: int | None = None
    severity: str = SEV_ERROR
    elapsed_seconds: float = 0.0    # time spent before the stage gave up
    exception: str | None = None    # repr of the underlying exception, if any

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, raw: dict) -> "Diagnostic":
        fields = ("code", "stage", "message", "kernel", "loop_id", "severity",
                  "elapsed_seconds", "exception")
        return cls(**{k: raw[k] for k in fields if k in raw})

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        where = self.kernel or "<unit>"
        if self.loop_id is not None:
            where += f":loop{self.loop_id}"
        return f"[{self.code}] {where}: {self.message}"


@dataclass
class DiagnosticLog:
    """An append-only diagnostic collection with severity filters."""

    records: list[Diagnostic] = field(default_factory=list)

    def add(self, diag: Diagnostic) -> Diagnostic:
        self.records.append(diag)
        return diag

    def emit(self, code: str, stage: str, message: str, *,
             kernel: str | None = None, loop_id: int | None = None,
             severity: str | None = None, elapsed: float = 0.0,
             exc: BaseException | None = None) -> Diagnostic:
        if severity is None:
            severity = {"E": SEV_ERROR, "W": SEV_WARNING}.get(
                code.split("-")[1], SEV_INFO)
        return self.add(Diagnostic(
            code=code, stage=stage, message=message, kernel=kernel,
            loop_id=loop_id, severity=severity, elapsed_seconds=elapsed,
            exception=repr(exc) if exc is not None else None,
        ))

    def __iter__(self):
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.records if d.severity == SEV_ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.records if d.severity == SEV_WARNING]

    def for_kernel(self, kernel: str) -> list[Diagnostic]:
        return [d for d in self.records if d.kernel == kernel]
