"""The CATT source-to-source compiler pipeline (§4) — resilient driver.

``catt_compile`` = static analysis (§4.1–4.2) + code transformation (§4.3):

1. resolve occupancy and the shared-memory carveout (Eqs. 1–4);
2. per loop, estimate the L1D footprint (Eqs. 5–8);
3. per loop, search throttling factors (Eq. 9) — warp level first, TB level
   only if warp level cannot fit the footprint;
4. split throttled loops into guarded warp groups (Fig. 4) and/or add a dummy
   shared array (Fig. 5).

``force_throttle`` applies a *fixed* (N, M) to every top-level loop — the
building block of the BFTT baseline (§5), which searches fixed TLPs with
"warp-level throttling and TB-level throttling methods".

Resilience contract
-------------------
The paper builds graceful degradation into the design (§4.2: when even the
minimum TLP cannot fit the L1D, the loop is left untouched — the CORR case).
The driver extends that posture to *failures*: with ``resilient=True`` (the
default), any frontend/analysis/transform exception degrades the affected
kernel (or loop) to its untransformed form and is recorded as a structured
:class:`~repro.transform.diagnostics.Diagnostic` on
``CattCompilation.diagnostics`` — one bad kernel can no longer abort a
translation unit or an experiment sweep.  ``validate=True`` additionally runs
every transformed kernel through the differential gate
(:mod:`repro.transform.validate`) and reverts provably unsafe transforms.
``budget`` caps analysis cost with partial-result degradation.  See
docs/ROBUSTNESS.md for the full degradation-mode catalogue.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..analysis.kernel_info import (
    KernelAnalysis,
    LoopAnalysis,
    TBThrottlePlan,
    analyze_kernel,
    tb_throttle_plan,
)
from ..analysis.occupancy import shared_usage_bytes
from ..analysis.throttle import SearchBudget, candidate_ns
from ..errors import ThrottleSearchError, WarpSplitError
from ..frontend.ast_nodes import FunctionDef, TranslationUnit
from ..frontend.errors import FrontendError
from ..obs.trace import span as _span
from ..sim.arch import GPUSpec
from ..testing.faults import check_fault
from .diagnostics import (
    E_ANALYSIS,
    E_FRONTEND,
    E_PROVED_RACE,
    E_TRANSFORM,
    I_SKIP_LOOP,
    I_STATIC_SAFE,
    I_VALIDATE_SKIP,
    W_BUDGET,
    W_REVERTED,
    W_SEARCH,
    DiagnosticLog,
)
from .tb_throttle import add_dummy_shared
from .utils import with_function
from .validate import (
    INCONCLUSIVE,
    STATIC_SAFE,
    ValidationReport,
    differential_validate,
)
from .warp_throttle import split_loop_for_warp_groups


@dataclass
class KernelTransform:
    """What CATT did to one kernel."""

    kernel_name: str
    analysis: KernelAnalysis | None
    warp_splits: list[tuple[int, int]] = field(default_factory=list)  # (loop_id, N)
    tb_plan: TBThrottlePlan | None = None
    tiles: list[tuple[int, int]] = field(default_factory=list)  # (loop_id, T)
    analysis_seconds: float = 0.0
    reverted: bool = False                      # validation gate said no
    validation: ValidationReport | None = None
    # Barrier-interval race verdicts (repro.analysis.dataflow.races); None
    # when the race analysis could not run.  A shared PROVED-RACE region
    # blocks warp-split and TB-throttle for the kernel (race_blocked).
    race_report: object | None = None
    race_blocked: bool = False

    @property
    def changed(self) -> bool:
        """A rewrite was *attempted* (whether or not it survived the gate)."""
        return bool(self.warp_splits) or self.tb_plan is not None \
            or bool(self.tiles)

    @property
    def transformed(self) -> bool:
        """The emitted unit actually carries this kernel's rewrite."""
        return self.changed and not self.reverted


@dataclass
class CattCompilation:
    """Result of compiling a translation unit with CATT.

    ``diagnostics`` records every degradation the resilient driver took; an
    empty log means every kernel compiled cleanly.
    """

    original: TranslationUnit
    unit: TranslationUnit
    transforms: dict[str, KernelTransform]
    diagnostics: DiagnosticLog = field(default_factory=DiagnosticLog)

    def transform_for(self, kernel_name: str) -> KernelTransform:
        return self.transforms[kernel_name]

    @property
    def ok(self) -> bool:
        """True when no kernel degraded with an error-severity diagnostic."""
        return not self.diagnostics.errors

    def diagnostics_for(self, kernel_name: str):
        return self.diagnostics.for_kernel(kernel_name)


def _select_loops(analysis: KernelAnalysis) -> list[LoopAnalysis]:
    """Throttled loops, skipping ones nested inside another throttled loop."""
    selected: list[LoopAnalysis] = []
    selected_ids: set[int] = set()
    for la in sorted(analysis.loops, key=lambda l: l.record.depth):
        if not (la.decision.throttles and la.decision.n > 1):
            continue
        ancestor = la.record.parent_id
        skip = False
        while ancestor is not None:
            if ancestor in selected_ids:
                skip = True
                break
            ancestor = analysis.kernel_loops.loop(ancestor).parent_id
        if skip:
            continue
        selected.append(la)
        selected_ids.add(la.record.loop_id)
    return selected


def catt_compile(
    unit: TranslationUnit,
    launches: dict[str, tuple],
    spec: GPUSpec,
    enable_tiling: bool = False,
    irregular_req: int = 1,
    resilient: bool = True,
    validate: bool = False,
    budget: SearchBudget | None = None,
    validate_seed: int = 0,
) -> CattCompilation:
    """Compile every kernel in ``launches`` (name -> (grid, block)) with CATT.

    ``enable_tiling`` turns on the future-work reduction-tiling transform
    (:mod:`repro.transform.tiling`) for loops whose contention is otherwise
    unresolvable — the paper's CORR case.  Off by default, as in the paper.
    ``irregular_req`` is §4.2's conservative request count for irregular
    accesses (1); the A2 ablation passes 32.

    ``resilient`` (default) isolates faults per kernel and per stage: the
    failing kernel passes through untransformed with a structured diagnostic
    instead of aborting the unit (pass ``False`` to re-raise, for debugging).
    ``validate`` runs every transformed kernel through the differential gate
    and reverts divergent/deadlocking transforms.  ``budget`` bounds the
    throttle search (wall clock + candidate count); on exhaustion the
    remaining work degrades to pass-through with ``CATT-W-BUDGET`` records.
    """
    with _span("transform.pipeline", kernels=len(launches),
               validate=validate, tiling=enable_tiling) as sp:
        comp = _catt_compile(
            unit, launches, spec, enable_tiling, irregular_req, resilient,
            validate, budget, validate_seed,
        )
        sp.set(
            transformed=sum(1 for t in comp.transforms.values()
                            if t.transformed),
            reverted=sum(1 for t in comp.transforms.values() if t.reverted),
            diagnostics=len(comp.diagnostics.records),
            errors=len(comp.diagnostics.errors),
        )
        if budget is not None:
            sp.set(budget_candidates=budget.candidates_used,
                   budget_expired=budget.expired)
        return comp


def _catt_compile(
    unit: TranslationUnit,
    launches: dict[str, tuple],
    spec: GPUSpec,
    enable_tiling: bool,
    irregular_req: int,
    resilient: bool,
    validate: bool,
    budget: SearchBudget | None,
    validate_seed: int,
) -> CattCompilation:
    from .tiling import try_tile_unresolvable

    log = DiagnosticLog()
    out = unit
    transforms: dict[str, KernelTransform] = {}
    for name, (grid, block) in launches.items():
        t0 = time.perf_counter()

        if budget is not None and budget.expired:
            log.emit(W_BUDGET, "budget",
                     "compile budget exhausted before this kernel; it passes "
                     "through untransformed", kernel=name)
            transforms[name] = KernelTransform(name, None)
            continue

        # -- stage: frontend (kernel lookup) -----------------------------
        try:
            check_fault("frontend", name)
            kernel = out.kernel(name)
        except Exception as exc:
            if not resilient:
                raise
            log.emit(E_FRONTEND, "frontend",
                     f"kernel unavailable: {exc}", kernel=name,
                     elapsed=time.perf_counter() - t0, exc=exc)
            transforms[name] = KernelTransform(name, None)
            continue

        # -- stage: analysis ---------------------------------------------
        try:
            with _span("transform.analysis", kernel=name) as asp:
                check_fault("analysis", name)
                analysis = analyze_kernel(out, name, block, spec, grid=grid,
                                          irregular_req=irregular_req,
                                          budget=budget)
                asp.set(loops=len(analysis.loops),
                        throttled=len(analysis.throttled_loops))
        except Exception as exc:
            if not resilient:
                raise
            code = E_FRONTEND if isinstance(exc, FrontendError) else E_ANALYSIS
            log.emit(code, "analysis",
                     f"static analysis failed: {exc}", kernel=name,
                     elapsed=time.perf_counter() - t0, exc=exc)
            transforms[name] = KernelTransform(name, None)
            continue
        if analysis.budget_exhausted:
            log.emit(W_BUDGET, "budget",
                     f"throttle-search budget ran out; loops "
                     f"{analysis.budget_exhausted_loops} left untouched",
                     kernel=name)

        record = KernelTransform(name, analysis)

        # -- stage: analysis (race verdicts) -----------------------------
        # A proved cross-thread race on a shared region means the kernel's
        # correctness already depends on scheduling; reordering execution
        # (warp split) or changing residency (TB throttle) could flip the
        # observed outcome, so both transforms are blocked.
        try:
            from ..analysis.dataflow.races import analyze_races

            record.race_report = analyze_races(analysis)
        except Exception:
            record.race_report = None
        if record.race_report is not None:
            proved = record.race_report.races("shared")
            if proved:
                record.race_blocked = True
                v = proved[0]
                log.emit(E_PROVED_RACE, "analysis",
                         f"shared array {v.array!r} provably races in "
                         f"barrier interval #{v.interval} ({v.reason}); "
                         f"warp-split and TB-throttle blocked", kernel=name)

        # -- stage: transform (tiling, optional) -------------------------
        if enable_tiling:
            for la in analysis.loops:
                if not (la.decision.needed and not la.decision.fits):
                    continue
                try:
                    check_fault("transform", f"{name}:tiling{la.loop_id}")
                    l1d_lines = analysis.occupancy.l1d_bytes // spec.cache_line
                    tiled = try_tile_unresolvable(kernel, la, l1d_lines)
                except Exception as exc:
                    if not resilient:
                        raise
                    log.emit(E_TRANSFORM, "transform",
                             f"reduction tiling failed: {exc}", kernel=name,
                             loop_id=la.loop_id, exc=exc)
                    continue
                if tiled is not None:
                    kernel, tile = tiled
                    record.tiles.append((la.loop_id, tile))

        # -- stage: transform (Fig. 4 warp splits, per loop) -------------
        for la in (() if record.race_blocked else _select_loops(analysis)):
            with _span("transform.warp_split", kernel=name,
                       loop=la.record.loop_id, n=la.decision.n) as wsp:
                try:
                    check_fault("transform", f"{name}:loop{la.record.loop_id}")
                    kernel = split_loop_for_warp_groups(
                        kernel,
                        la.record.stmt,
                        la.decision.n,
                        analysis.occupancy.warps_per_tb,
                        analysis.block_dim,
                        spec.warp_size,
                    )
                except WarpSplitError as exc:
                    # Expected degradation: the loop object was restructured
                    # by an earlier transform (tiling) — its footprint has
                    # changed anyway; skip this loop only.
                    log.emit(I_SKIP_LOOP, "transform",
                             f"warp split skipped: {exc}", kernel=name,
                             loop_id=la.record.loop_id)
                    wsp.set(skipped=True)
                    continue
                except Exception as exc:
                    if not resilient:
                        raise
                    log.emit(E_TRANSFORM, "transform",
                             f"warp split failed: {exc}", kernel=name,
                             loop_id=la.record.loop_id, exc=exc)
                    wsp.set(failed=True)
                    continue
            record.warp_splits.append((la.record.loop_id, la.decision.n))

        # -- stage: transform (Fig. 5 dummy shared) ----------------------
        tb_m = analysis.tb_m
        if tb_m > 0 and not record.race_blocked:
            with _span("transform.tb_throttle", kernel=name, m=tb_m) as tsp:
                try:
                    check_fault("transform", f"{name}:tb")
                    plan = tb_throttle_plan(
                        spec,
                        shared_usage_bytes(out.kernel(name)),
                        analysis.occupancy.tb_sm - tb_m,
                    )
                    if plan is not None and plan.dummy_bytes > 0:
                        kernel = add_dummy_shared(kernel, plan.dummy_bytes)
                        record.tb_plan = plan
                        tsp.set(dummy_bytes=plan.dummy_bytes,
                                target_tbs=plan.target_tbs)
                except Exception as exc:
                    if not resilient:
                        raise
                    log.emit(E_TRANSFORM, "transform",
                             f"TB-level throttle failed: {exc}", kernel=name,
                             exc=exc)

        # -- stage: validate (static proof, then differential gate) ------
        if validate and record.changed:
            with _span("transform.validate", kernel=name) as vsp:
                # Statically proven-safe transforms skip the lockstep run:
                # the semantic legality of every warp split plus a structural
                # match against the Fig. 4/5 shape is a proof, not a spot
                # check.
                verdict = None
                try:
                    from ..analysis.dataflow.safety import (
                        verify_transform_static,
                    )

                    verdict = verify_transform_static(
                        analysis, record, out.kernel(name), kernel)
                except Exception:
                    verdict = None  # fall back to the dynamic gate
                if verdict is not None and verdict.safe:
                    record.validation = ValidationReport(
                        name, STATIC_SAFE,
                        "warp-split legality proven statically; differential "
                        "gate skipped")
                    log.emit(I_STATIC_SAFE, "validate",
                             record.validation.detail, kernel=name)
                    vsp.set(status=STATIC_SAFE, reverted=False)
                    record.analysis_seconds = time.perf_counter() - t0
                    out = with_function(out, kernel)
                    transforms[name] = record
                    continue
                try:
                    report = differential_validate(
                        out, with_function(out, kernel), name, grid, block,
                        seed=validate_seed,
                    )
                except Exception as exc:
                    if not resilient:
                        raise
                    report = ValidationReport(
                        name, INCONCLUSIVE, f"validator crashed: {exc!r}")
                record.validation = report
                vsp.set(status=report.status, reverted=report.must_revert)
                if report.must_revert:
                    record.reverted = True
                    log.emit(W_REVERTED, "validate",
                             f"transform reverted ({report.status}): "
                             f"{report.detail}", kernel=name)
                elif report.status == INCONCLUSIVE:
                    log.emit(I_VALIDATE_SKIP, "validate", report.detail,
                             kernel=name)

        record.analysis_seconds = time.perf_counter() - t0
        if record.transformed:
            out = with_function(out, kernel)
        transforms[name] = record
    return CattCompilation(original=unit, unit=out, transforms=transforms,
                           diagnostics=log)


def force_throttle(
    unit: TranslationUnit,
    kernel_name: str,
    block,
    spec: GPUSpec,
    n: int,
    m: int,
    grid=None,
    on_error: str = "raise",
    diagnostics: DiagnosticLog | None = None,
) -> TranslationUnit:
    """Apply a fixed (N, M) throttle to every top-level loop of one kernel.

    This is the mechanism BFTT (and the Fig. 9 sensitivity sweep) uses to
    realize an arbitrary TLP: the same Fig. 4 / Fig. 5 transformations, with
    factors chosen by search instead of analysis.

    Invalid factors raise :class:`repro.errors.ThrottleSearchError` (a
    ``ValueError`` subclass) when ``on_error="raise"`` (the default); with
    ``on_error="degrade"`` the offending throttling level is skipped per loop
    and recorded on ``diagnostics`` instead — the returned unit is always
    runnable.
    """
    if on_error not in ("raise", "degrade"):
        raise ValueError(f"on_error must be 'raise' or 'degrade', "
                         f"got {on_error!r}")
    log = diagnostics if diagnostics is not None else DiagnosticLog()
    analysis = analyze_kernel(unit, kernel_name, block, spec, grid=grid)
    warps = analysis.occupancy.warps_per_tb
    if n not in candidate_ns(warps):
        if on_error == "raise":
            raise ThrottleSearchError(
                f"N={n} not a valid division of {warps} warps",
                kernel=kernel_name)
        log.emit(W_SEARCH, "analysis",
                 f"N={n} not a valid division of {warps} warps; warp-level "
                 f"throttling skipped", kernel=kernel_name)
        n = 1
    kernel = unit.kernel(kernel_name)
    if n > 1:
        for la in analysis.loops:
            if la.record.depth != 0:
                continue
            try:
                kernel = split_loop_for_warp_groups(
                    kernel, la.record.stmt, n, warps, analysis.block_dim,
                    spec.warp_size,
                )
            except WarpSplitError as exc:
                if on_error == "raise":
                    raise
                log.emit(W_SEARCH, "transform",
                         f"warp split skipped: {exc}", kernel=kernel_name,
                         loop_id=la.record.loop_id)
                continue
    if m > 0:
        target = analysis.occupancy.tb_sm - m
        plan = None
        if target < 1:
            if on_error == "raise":
                raise ThrottleSearchError(
                    f"M={m} leaves no resident TBs", kernel=kernel_name)
            log.emit(W_SEARCH, "analysis",
                     f"M={m} leaves no resident TBs; TB-level throttling "
                     f"skipped", kernel=kernel_name)
        else:
            plan = tb_throttle_plan(
                spec, shared_usage_bytes(unit.kernel(kernel_name)), target
            )
            if plan is None:
                if on_error == "raise":
                    raise ThrottleSearchError(
                        f"cannot express a {target}-TB limit via carveout",
                        kernel=kernel_name)
                log.emit(W_SEARCH, "analysis",
                         f"cannot express a {target}-TB limit via carveout; "
                         f"TB-level throttling skipped", kernel=kernel_name)
        if plan is not None and plan.dummy_bytes > 0:
            kernel = add_dummy_shared(kernel, plan.dummy_bytes)
    return with_function(unit, kernel)


def specialize_kernel(
    unit: TranslationUnit,
    kernel_name: str,
    block,
    spec: GPUSpec,
    factors: list[tuple[int, int]],
    grid=None,
) -> tuple[TranslationUnit, dict[tuple[int, int], str]]:
    """§4.3's dynamic-parameter fallback: emit one specialized copy of the
    kernel per (N, M) so the host can pick at run time.

    Returns the augmented unit and a (N, M) -> specialized-kernel-name map.
    """
    names: dict[tuple[int, int], str] = {}
    out = unit
    for n, m in factors:
        variant_unit = force_throttle(out, kernel_name, block, spec, n, m, grid)
        variant = variant_unit.kernel(kernel_name)
        new_name = f"{kernel_name}__catt_n{n}_m{m}"
        renamed = FunctionDef(
            new_name, variant.return_type, variant.params, variant.body,
            is_kernel=True, is_device=False, loc=variant.loc,
        )
        out = TranslationUnit(out.functions + (renamed,), dict(out.defines))
        names[(n, m)] = new_name
    return out, names
