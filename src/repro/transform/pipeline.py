"""The CATT source-to-source compiler pipeline (§4).

``catt_compile`` = static analysis (§4.1–4.2) + code transformation (§4.3):

1. resolve occupancy and the shared-memory carveout (Eqs. 1–4);
2. per loop, estimate the L1D footprint (Eqs. 5–8);
3. per loop, search throttling factors (Eq. 9) — warp level first, TB level
   only if warp level cannot fit the footprint;
4. split throttled loops into guarded warp groups (Fig. 4) and/or add a dummy
   shared array (Fig. 5).

``force_throttle`` applies a *fixed* (N, M) to every top-level loop — the
building block of the BFTT baseline (§5), which searches fixed TLPs with
"warp-level throttling and TB-level throttling methods".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..analysis.kernel_info import (
    KernelAnalysis,
    LoopAnalysis,
    TBThrottlePlan,
    analyze_kernel,
    tb_throttle_plan,
)
from ..analysis.occupancy import shared_usage_bytes
from ..analysis.throttle import candidate_ns
from ..frontend.ast_nodes import FunctionDef, TranslationUnit
from ..sim.arch import GPUSpec
from .tb_throttle import add_dummy_shared
from .utils import with_function
from .warp_throttle import split_loop_for_warp_groups


@dataclass
class KernelTransform:
    """What CATT did to one kernel."""

    kernel_name: str
    analysis: KernelAnalysis
    warp_splits: list[tuple[int, int]] = field(default_factory=list)  # (loop_id, N)
    tb_plan: TBThrottlePlan | None = None
    tiles: list[tuple[int, int]] = field(default_factory=list)  # (loop_id, T)
    analysis_seconds: float = 0.0

    @property
    def transformed(self) -> bool:
        return bool(self.warp_splits) or self.tb_plan is not None \
            or bool(self.tiles)


@dataclass
class CattCompilation:
    """Result of compiling a translation unit with CATT."""

    original: TranslationUnit
    unit: TranslationUnit
    transforms: dict[str, KernelTransform]

    def transform_for(self, kernel_name: str) -> KernelTransform:
        return self.transforms[kernel_name]


def _select_loops(analysis: KernelAnalysis) -> list[LoopAnalysis]:
    """Throttled loops, skipping ones nested inside another throttled loop."""
    selected: list[LoopAnalysis] = []
    selected_ids: set[int] = set()
    for la in sorted(analysis.loops, key=lambda l: l.record.depth):
        if not (la.decision.throttles and la.decision.n > 1):
            continue
        ancestor = la.record.parent_id
        skip = False
        while ancestor is not None:
            if ancestor in selected_ids:
                skip = True
                break
            ancestor = analysis.kernel_loops.loop(ancestor).parent_id
        if skip:
            continue
        selected.append(la)
        selected_ids.add(la.record.loop_id)
    return selected


def catt_compile(
    unit: TranslationUnit,
    launches: dict[str, tuple],
    spec: GPUSpec,
    enable_tiling: bool = False,
    irregular_req: int = 1,
) -> CattCompilation:
    """Compile every kernel in ``launches`` (name -> (grid, block)) with CATT.

    ``enable_tiling`` turns on the future-work reduction-tiling transform
    (:mod:`repro.transform.tiling`) for loops whose contention is otherwise
    unresolvable — the paper's CORR case.  Off by default, as in the paper.
    ``irregular_req`` is §4.2's conservative request count for irregular
    accesses (1); the A2 ablation passes 32.
    """
    from .tiling import try_tile_unresolvable

    out = unit
    transforms: dict[str, KernelTransform] = {}
    for name, (grid, block) in launches.items():
        t0 = time.perf_counter()
        analysis = analyze_kernel(out, name, block, spec, grid=grid,
                                  irregular_req=irregular_req)
        record = KernelTransform(name, analysis)
        kernel = out.kernel(name)

        if enable_tiling:
            for la in analysis.loops:
                if la.decision.needed and not la.decision.fits:
                    l1d_lines = analysis.occupancy.l1d_bytes // spec.cache_line
                    tiled = try_tile_unresolvable(kernel, la, l1d_lines)
                    if tiled is not None:
                        kernel, tile = tiled
                        record.tiles.append((la.loop_id, tile))

        for la in _select_loops(analysis):
            try:
                kernel = split_loop_for_warp_groups(
                    kernel,
                    la.record.stmt,
                    la.decision.n,
                    analysis.occupancy.warps_per_tb,
                    analysis.block_dim,
                    spec.warp_size,
                )
            except ValueError:
                # The loop object was restructured by an earlier transform
                # (tiling) — its footprint has changed anyway; skip.
                continue
            record.warp_splits.append((la.record.loop_id, la.decision.n))

        tb_m = analysis.tb_m
        if tb_m > 0:
            plan = tb_throttle_plan(
                spec,
                shared_usage_bytes(out.kernel(name)),
                analysis.occupancy.tb_sm - tb_m,
            )
            if plan is not None and plan.dummy_bytes > 0:
                kernel = add_dummy_shared(kernel, plan.dummy_bytes)
                record.tb_plan = plan

        record.analysis_seconds = time.perf_counter() - t0
        if record.transformed:
            out = with_function(out, kernel)
        transforms[name] = record
    return CattCompilation(original=unit, unit=out, transforms=transforms)


def force_throttle(
    unit: TranslationUnit,
    kernel_name: str,
    block,
    spec: GPUSpec,
    n: int,
    m: int,
    grid=None,
) -> TranslationUnit:
    """Apply a fixed (N, M) throttle to every top-level loop of one kernel.

    This is the mechanism BFTT (and the Fig. 9 sensitivity sweep) uses to
    realize an arbitrary TLP: the same Fig. 4 / Fig. 5 transformations, with
    factors chosen by search instead of analysis.
    """
    analysis = analyze_kernel(unit, kernel_name, block, spec, grid=grid)
    warps = analysis.occupancy.warps_per_tb
    if n not in candidate_ns(warps):
        raise ValueError(f"N={n} not a valid division of {warps} warps")
    kernel = unit.kernel(kernel_name)
    if n > 1:
        for la in analysis.loops:
            if la.record.depth != 0:
                continue
            kernel = split_loop_for_warp_groups(
                kernel, la.record.stmt, n, warps, analysis.block_dim,
                spec.warp_size,
            )
    if m > 0:
        target = analysis.occupancy.tb_sm - m
        if target < 1:
            raise ValueError(f"M={m} leaves no resident TBs")
        plan = tb_throttle_plan(
            spec, shared_usage_bytes(unit.kernel(kernel_name)), target
        )
        if plan is None:
            raise ValueError(f"cannot express a {target}-TB limit via carveout")
        if plan.dummy_bytes > 0:
            kernel = add_dummy_shared(kernel, plan.dummy_bytes)
    return with_function(unit, kernel)


def specialize_kernel(
    unit: TranslationUnit,
    kernel_name: str,
    block,
    spec: GPUSpec,
    factors: list[tuple[int, int]],
    grid=None,
) -> tuple[TranslationUnit, dict[tuple[int, int], str]]:
    """§4.3's dynamic-parameter fallback: emit one specialized copy of the
    kernel per (N, M) so the host can pick at run time.

    Returns the augmented unit and a (N, M) -> specialized-kernel-name map.
    """
    names: dict[tuple[int, int], str] = {}
    out = unit
    for n, m in factors:
        variant_unit = force_throttle(out, kernel_name, block, spec, n, m, grid)
        variant = variant_unit.kernel(kernel_name)
        new_name = f"{kernel_name}__catt_n{n}_m{m}"
        renamed = FunctionDef(
            new_name, variant.return_type, variant.params, variant.body,
            is_kernel=True, is_device=False, loc=variant.loc,
        )
        out = TranslationUnit(out.functions + (renamed,), dict(out.defines))
        names[(n, m)] = new_name
    return out, names
