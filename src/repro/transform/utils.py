"""AST rebuilding helpers shared by the throttling transforms.

The AST is immutable, so a transform rebuilds the spine from the kernel body
down to the statement it replaces, sharing every untouched subtree.
"""

from __future__ import annotations

from ..frontend.ast_nodes import (
    BinOp,
    Block,
    DoWhileStmt,
    Expr,
    ForStmt,
    FunctionDef,
    Ident,
    IfStmt,
    IntLit,
    MemberRef,
    Stmt,
    TranslationUnit,
    WhileStmt,
)


def replace_stmt(root: Stmt, target: Stmt, replacement: list[Stmt]) -> Stmt:
    """Return ``root`` with ``target`` (identity match) replaced by
    ``replacement`` (spliced when inside a Block, wrapped otherwise)."""
    found, rebuilt = _replace(root, target, replacement)
    if not found:
        raise ValueError("target statement not found under root")
    return rebuilt


def _wrap(replacement: list[Stmt]) -> Stmt:
    return replacement[0] if len(replacement) == 1 else Block(tuple(replacement))


def _replace(node: Stmt, target: Stmt, replacement: list[Stmt]) -> tuple[bool, Stmt]:
    if node is target:
        return True, _wrap(replacement)
    if isinstance(node, Block):
        out: list[Stmt] = []
        found = False
        for s in node.statements:
            if s is target:
                out.extend(replacement)
                found = True
                continue
            if not found:
                sub_found, rebuilt = _replace(s, target, replacement)
                if sub_found:
                    out.append(rebuilt)
                    found = True
                    continue
            out.append(s)
        return found, (Block(tuple(out), node.loc) if found else node)
    if isinstance(node, IfStmt):
        found, then = _replace(node.then, target, replacement)
        if found:
            return True, IfStmt(node.cond, then, node.otherwise, node.loc)
        if node.otherwise is not None:
            found, other = _replace(node.otherwise, target, replacement)
            if found:
                return True, IfStmt(node.cond, node.then, other, node.loc)
        return False, node
    if isinstance(node, ForStmt):
        found, body = _replace(node.body, target, replacement)
        if found:
            return True, ForStmt(node.init, node.cond, node.step, body, node.loc)
        return False, node
    if isinstance(node, WhileStmt):
        found, body = _replace(node.body, target, replacement)
        if found:
            return True, WhileStmt(node.cond, body, node.loc)
        return False, node
    if isinstance(node, DoWhileStmt):
        found, body = _replace(node.body, target, replacement)
        if found:
            return True, DoWhileStmt(body, node.cond, node.loc)
        return False, node
    return False, node


def with_body(func: FunctionDef, body: Block) -> FunctionDef:
    return FunctionDef(
        func.name, func.return_type, func.params, body,
        is_kernel=func.is_kernel, is_device=func.is_device, loc=func.loc,
    )


def with_function(unit: TranslationUnit, func: FunctionDef) -> TranslationUnit:
    """Replace the function with the same name in ``unit``."""
    out = []
    replaced = False
    for f in unit.functions:
        if f.name == func.name:
            out.append(func)
            replaced = True
        else:
            out.append(f)
    if not replaced:
        raise KeyError(f"function {func.name!r} not in unit")
    return TranslationUnit(tuple(out), dict(unit.defines))


def linear_warp_id_expr(block_dim: tuple[int, int, int],
                        warp_size: int = 32) -> Expr:
    """``(linearized thread id) / warp_size`` as an AST expression.

    For 1-D TBs this is the paper's ``threadIdx.x / WS`` (Fig. 4); for
    multidimensional TBs the thread id is linearized first.
    """
    tidx = MemberRef(Ident("threadIdx"), "x")
    flat: Expr = tidx
    if block_dim[1] > 1 or block_dim[2] > 1:
        tidy = MemberRef(Ident("threadIdx"), "y")
        flat = BinOp("+", BinOp("*", tidy, IntLit(block_dim[0])), tidx)
        if block_dim[2] > 1:
            tidz = MemberRef(Ident("threadIdx"), "z")
            flat = BinOp(
                "+",
                BinOp("*", tidz, IntLit(block_dim[0] * block_dim[1])),
                flat,
            )
    return BinOp("/", flat, IntLit(warp_size))
