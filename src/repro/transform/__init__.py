"""CATT code transformations (§4.3): warp-level and TB-level throttling."""

from .diagnostics import Diagnostic, DiagnosticLog
from .pipeline import (
    CattCompilation,
    KernelTransform,
    catt_compile,
    force_throttle,
    specialize_kernel,
)
from .tb_throttle import DUMMY_NAME, add_dummy_shared, dummy_bytes_in
from .utils import linear_warp_id_expr, replace_stmt, with_body, with_function
from .validate import ValidationReport, differential_validate
from .warp_throttle import split_loop_for_warp_groups

__all__ = [
    "CattCompilation",
    "Diagnostic",
    "DiagnosticLog",
    "KernelTransform",
    "ValidationReport",
    "catt_compile",
    "differential_validate",
    "force_throttle",
    "specialize_kernel",
    "DUMMY_NAME",
    "add_dummy_shared",
    "dummy_bytes_in",
    "linear_warp_id_expr",
    "replace_stmt",
    "with_body",
    "with_function",
    "split_loop_for_warp_groups",
]
