"""Differential validation gate for CATT transforms.

CATT's transformations are supposed to be *semantics-preserving* (§4.3: the
warp-group guards operate at warp granularity; the dummy shared array is
dead weight).  The resilient driver does not take that on faith: when
``catt_compile(..., validate=True)`` transforms a kernel, this gate runs the
original and the transformed kernel on the functional interpreter with small
deterministic inputs and compares every output buffer.  A transform whose
outputs diverge — or that introduces a ``__syncthreads()`` barrier-divergence
hazard the original did not have — is reverted and recorded as a
``CATT-W-REVERTED`` diagnostic.

The executor here is *functional and lockstep*, not the timing simulator:
each warp of a TB advances until it parks at a barrier (yields
:class:`~repro.sim.events.SyncEvent`) or terminates; the barrier releases
when every non-terminated warp has arrived.  A warp terminating while
siblings wait at a barrier is exactly the CUDA barrier-divergence hazard
(undefined behaviour on hardware), so it is tracked and compared across the
two versions.  Validation is deliberately bounded — a TB cap and an event
budget — so the gate can never hang a compile.

Inputs are synthesized deterministically from a seed: pointer parameters get
small random arrays, scalar parameters get fixed small values.  Kernels that
index past the synthesized buffers fail on the *original* already; that makes
the run inconclusive and the transform is kept with a
``CATT-I-VALIDATE-SKIP`` diagnostic (the gate refuses to guess).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.occupancy import shared_usage_bytes
from ..frontend.ast_nodes import FunctionDef, TranslationUnit
from ..sim.events import SyncEvent
from ..sim.interp import (
    KernelArgs,
    SharedBlock,
    SimulationError,
    WarpInterpreter,
    np_dtype_for,
)
from ..sim.launch import resolve_args, shared_layout_of
from ..sim.memory import GlobalMemory, MemoryError_
from ..testing.faults import check_fault

WARP_SIZE = 32

# Statuses, from best to worst.  STATIC_SAFE means the static verifier
# (:mod:`repro.analysis.dataflow.safety`) proved the transform without
# running the lockstep interpreter at all.
STATIC_SAFE = "static-safe"
PASS = "pass"
INCONCLUSIVE = "inconclusive"
DIVERGED = "diverged"
DEADLOCK = "deadlock"


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of validating one transformed kernel (statically proven or
    differentially executed)."""

    kernel: str
    status: str            # STATIC_SAFE | PASS | INCONCLUSIVE | DIVERGED | DEADLOCK
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status in (PASS, STATIC_SAFE)

    @property
    def must_revert(self) -> bool:
        return self.status in (DIVERGED, DEADLOCK)


class _EventBudgetExceeded(Exception):
    """The bounded functional run used up its event budget."""


@dataclass
class _FunctionalRun:
    buffers: dict[str, np.ndarray]   # final contents per pointer param
    barrier_hazard: bool             # warp exited while siblings waited
    events: int


def _as_dim3(value) -> tuple[int, int, int]:
    if isinstance(value, int):
        return (value, 1, 1)
    value = tuple(value)
    return (value + (1, 1, 1))[:3]


def synthesize_inputs(
    kernel: FunctionDef,
    grid,
    block,
    seed: int = 0,
    elems: int | None = None,
) -> tuple[list, dict[str, np.ndarray]]:
    """Deterministic launch arguments for a validation run.

    Returns ``(arg_values, host_arrays)`` where ``arg_values`` is positional
    (host arrays stand in for device pointers and are allocated by the
    executor) and ``host_arrays`` maps pointer-parameter names to their
    initial contents.
    """
    grid3, block3 = _as_dim3(grid), _as_dim3(block)
    threads = (grid3[0] * grid3[1] * grid3[2]
               * block3[0] * block3[1] * block3[2])
    if elems is None:
        elems = int(max(4096, min(threads * 16, 1 << 18)))
    rng = np.random.default_rng(seed)
    values: list = []
    arrays: dict[str, np.ndarray] = {}
    for param in kernel.params:
        if param.type.is_pointer:
            dtype = np_dtype_for(param.type.pointee())
            if np.issubdtype(dtype, np.floating):
                arr = (rng.standard_normal(elems)).astype(dtype)
            else:
                arr = rng.integers(0, 8, elems).astype(dtype)
            arrays[param.name] = arr
            values.append(arr)             # placeholder; executor allocates
        elif np_dtype_for(param.type).kind == "f":
            values.append(0.5)
        else:
            # Small enough to be a safe stride, large enough to exercise a
            # size-bound or trip-count use.
            values.append(4)
    return values, arrays


def run_functional(
    unit: TranslationUnit,
    kernel_name: str,
    grid,
    block,
    arrays: dict[str, np.ndarray],
    scalars: list,
    max_tbs: int = 4,
    max_events: int = 2_000_000,
) -> _FunctionalRun:
    """Execute ``kernel_name`` functionally (no timing) in lockstep.

    ``arrays`` provides initial pointer-parameter contents (copied into a
    private memory space); ``scalars`` is the full positional argument list
    where pointer slots are ignored.  At most ``max_tbs`` TBs run, warps
    advancing barrier-to-barrier so shared-memory communication is ordered
    the same way on every call.
    """
    kernel = unit.kernel(kernel_name)
    grid3, block3 = _as_dim3(grid), _as_dim3(block)
    threads_per_tb = block3[0] * block3[1] * block3[2]
    warps_per_tb = max(-(-threads_per_tb // WARP_SIZE), 1)

    memory = GlobalMemory()
    addrs: dict[str, int] = {}
    values: list = []
    for param, fallback in zip(kernel.params, scalars):
        if param.type.is_pointer:
            addr = memory.alloc(arrays[param.name].copy())
            addrs[param.name] = addr
            values.append(addr)
        else:
            values.append(fallback)
    kargs = KernelArgs(tuple(resolve_args(kernel, values)))
    layout = shared_layout_of(kernel)
    shared_bytes = max(shared_usage_bytes(kernel), 1)

    total_tbs = grid3[0] * grid3[1] * grid3[2]
    events = 0
    hazard = False
    for tb_id in range(min(total_tbs, max_tbs)):
        bx = tb_id % grid3[0]
        by = (tb_id // grid3[0]) % grid3[1]
        bz = tb_id // (grid3[0] * grid3[1])
        shared = SharedBlock(shared_bytes)
        gens = []
        for w in range(warps_per_tb):
            interp = WarpInterpreter(
                unit, kernel, memory, shared, layout, kargs,
                (bx, by, bz), block3, grid3, w,
            )
            gens.append(interp.run())
        state = ["run"] * warps_per_tb
        while True:
            for w, gen in enumerate(gens):
                if state[w] != "run":
                    continue
                while True:
                    try:
                        ev = next(gen)
                    except StopIteration:
                        state[w] = "done"
                        break
                    events += 1
                    if events > max_events:
                        raise _EventBudgetExceeded(
                            f"exceeded {max_events} events")
                    if isinstance(ev, SyncEvent):
                        state[w] = "barrier"
                        break
            waiting = [w for w in range(warps_per_tb)
                       if state[w] == "barrier"]
            if not waiting:
                break                       # every warp terminated
            if any(s == "done" for s in state):
                # CUDA barrier-divergence hazard: siblings park at a
                # barrier a terminated warp will never reach.  Release
                # anyway (the timing engine's semantics) but record it.
                hazard = True
            for w in waiting:
                state[w] = "run"
    final = {name: np.array(memory.find(addr).buffer)
             for name, addr in addrs.items()}
    return _FunctionalRun(buffers=final, barrier_hazard=hazard, events=events)


def _compare(base: dict[str, np.ndarray], test: dict[str, np.ndarray]
             ) -> str | None:
    """Return a mismatch description, or None when all buffers agree."""
    for name, expected in base.items():
        got = test[name]
        if np.issubdtype(expected.dtype, np.floating):
            close = np.allclose(got, expected, rtol=1e-4, atol=1e-5,
                                equal_nan=True)
        else:
            close = np.array_equal(got, expected)
        if not close:
            bad = int(np.sum(~np.isclose(got, expected, rtol=1e-4, atol=1e-5,
                                         equal_nan=True)))
            return f"buffer {name!r} diverged in {bad}/{expected.size} elements"
    return None


def differential_validate(
    original: TranslationUnit,
    transformed: TranslationUnit,
    kernel_name: str,
    grid,
    block,
    seed: int = 0,
    max_tbs: int = 4,
    max_events: int = 2_000_000,
) -> ValidationReport:
    """Differentially validate ``kernel_name`` between two units.

    Never raises: any failure mode maps onto a :class:`ValidationReport`
    status.  ``inconclusive`` means the gate could not judge (the *original*
    kernel itself would not run on synthesized inputs) and the caller should
    keep the transform; ``diverged``/``deadlock`` mean the transform is
    provably unsafe and must be reverted.
    """
    kernel = original.kernel(kernel_name)
    # Buffer sizes are a heuristic; when the *original* kernel indexes past
    # them, grow and retry (functional cost is independent of buffer size).
    base = None
    elems = None
    for _ in range(4):
        scalars, arrays = synthesize_inputs(kernel, grid, block, seed=seed,
                                            elems=elems)
        elems = 8 * len(next(iter(arrays.values()))) if arrays else None
        try:
            check_fault("sim", f"validate:{kernel_name}")
            base = run_functional(original, kernel_name, grid, block, arrays,
                                  scalars, max_tbs=max_tbs,
                                  max_events=max_events)
            break
        except MemoryError_ as exc:
            last_exc: Exception = exc
            if elems is None or elems > (1 << 24):
                break
        except (SimulationError, _EventBudgetExceeded,
                ZeroDivisionError, OverflowError) as exc:
            return ValidationReport(kernel_name, INCONCLUSIVE,
                                    f"original kernel not runnable: {exc}")
    if base is None:
        return ValidationReport(kernel_name, INCONCLUSIVE,
                                f"original kernel not runnable: {last_exc}")
    try:
        test = run_functional(transformed, kernel_name, grid, block, arrays,
                              scalars, max_tbs=max_tbs, max_events=max_events)
    except _EventBudgetExceeded as exc:
        # The original fit the same budget; the transform runs away.
        return ValidationReport(kernel_name, DEADLOCK, str(exc))
    except (SimulationError, MemoryError_, ZeroDivisionError,
            OverflowError) as exc:
        return ValidationReport(kernel_name, DIVERGED,
                                f"transformed kernel failed: {exc}")
    if test.barrier_hazard and not base.barrier_hazard:
        return ValidationReport(
            kernel_name, DEADLOCK,
            "transform introduced a __syncthreads() barrier-divergence "
            "hazard (warp exits while siblings wait)")
    mismatch = _compare(base.buffers, test.buffers)
    if mismatch is not None:
        return ValidationReport(kernel_name, DIVERGED, mismatch)
    return ValidationReport(kernel_name, PASS,
                            f"{test.events} events compared equal")
