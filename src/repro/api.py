"""``repro.api`` — the unified :class:`Session` facade.

One object that ties the whole pipeline together: a resolved
:class:`~repro.options.SimOptions` (the *only* place the deprecated
environment variables are consulted — exactly once, at construction), a
simulated :class:`~repro.runtime.device.Device`, and the observability layer
(:mod:`repro.obs`).  Every Session method runs with the session's options
active, so engine/dedup/cache selection is deterministic and explicit
instead of ambient process state.

Quickstart::

    from repro import Session, SimOptions

    with Session("max", SimOptions(engine="compiled", trace=True)) as sess:
        unit = sess.compile(CUDA_SOURCE)
        comp = sess.catt(unit, {"my_kernel": (grid, block)})
        result = sess.launch(comp.unit, "my_kernel", grid, block, args=[...])
        print(sess.render_trace())
        sess.write_manifest("run.manifest.json")

Sessions are context managers: ``close()`` (or leaving the ``with`` block)
flushes the result cache and releases the session; a closed session refuses
further pipeline work.  The same operations are also available as typed
requests (:mod:`repro.service.protocol`) via :meth:`Session.request` — the
exact API :class:`repro.service.ServiceClient` speaks to a remote ``catt
serve`` process, so swapping local for remote execution is a one-line
change.

Results are bit-identical to the legacy env-var path — the Session only
changes *how the knobs are carried*, never what the simulator does.
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path

from .obs import (
    build_manifest,
    metrics_registry,
    render_tree,
    to_chrome_trace,
    to_jsonl,
    trace as _trace_mod,
    write_manifest,
)
from .options import SimOptions, set_active_options
from .runtime import Device
from .sim.arch import TITAN_V_SIM, TITAN_V_SIM_32K, GPUSpec

SPEC_NAMES: dict[str, GPUSpec] = {
    "max": TITAN_V_SIM,
    "32k": TITAN_V_SIM_32K,
}


class Session:
    """A configured pipeline: spec + options + device + observability."""

    def __init__(self, spec: GPUSpec | str = "max",
                 options: SimOptions | None = None):
        if isinstance(spec, str):
            try:
                self.spec_name, self.spec = spec, SPEC_NAMES[spec]
            except KeyError:
                raise ValueError(
                    f"unknown spec {spec!r}; options: {sorted(SPEC_NAMES)}"
                ) from None
        else:
            self.spec = spec
            self.spec_name = next(
                (k for k, v in SPEC_NAMES.items() if v is spec), "custom")
        # The one and only environment read: at construction, through the
        # deprecation shim.  An explicit ``options`` skips the env entirely.
        self.options = options if options is not None else SimOptions.from_env()
        self.device = Device(self.spec)
        self._result_cache = None
        self._closed = False

    # -- lifecycle -----------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Flush the result cache and retire this session (idempotent).

        After ``close()`` every pipeline method raises — a closed session
        holds no promises about cache or observability state.  Closing
        flushes the session's :class:`~repro.experiments.common.ResultCache`
        (a durability barrier) and drops the in-process memo so a later
        session re-reads the disk.
        """
        if self._closed:
            return
        self._closed = True
        if self._result_cache is not None:
            self._result_cache.flush()
            self._result_cache = None

    def __enter__(self) -> "Session":
        if self._closed:
            raise RuntimeError("session is closed")
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- option scoping -----------------------------------------------------
    @contextmanager
    def _scope(self):
        if self._closed:
            raise RuntimeError(
                "session is closed; construct a new Session to keep working")
        previous = set_active_options(self.options)
        tracer = _trace_mod.tracer()
        registry = metrics_registry.registry()
        prev_trace, prev_metrics = tracer.enabled, registry.enabled
        if self.options.trace:
            tracer.enabled = True
        if self.options.metrics:
            registry.enabled = True
        try:
            yield
        finally:
            tracer.enabled, registry.enabled = prev_trace, prev_metrics
            set_active_options(previous)

    # -- pipeline stages ----------------------------------------------------
    def compile(self, source: str):
        """Parse a CUDA-subset source into a TranslationUnit."""
        with self._scope():
            return self.device.compile(source)

    def analyze(self, unit, kernel_name: str, block, grid=None):
        """CATT static analysis (Eqs. 1–9) for one kernel."""
        from .analysis import analyze_kernel

        with self._scope():
            return analyze_kernel(unit, kernel_name, block, self.spec,
                                  grid=grid)

    def catt(self, unit, launches: dict, **kwargs):
        """Run the CATT transform pipeline on ``unit``."""
        from .transform import catt_compile

        with self._scope():
            return catt_compile(unit, launches, self.spec, **kwargs)

    def launch(self, module, kernel_name: str, grid, block, args: list,
               **launch_kw):
        """Simulate one kernel launch under this session's options."""
        with self._scope():
            return self.device.launch(module, kernel_name, grid, block, args,
                                      **launch_kw)

    # -- device memory passthrough ------------------------------------------
    def to_device(self, host):
        return self.device.to_device(host)

    def zeros(self, shape, dtype=None):
        import numpy as np

        return self.device.zeros(shape, dtype or np.float32)

    def empty_like(self, host):
        return self.device.empty_like(host)

    # -- experiment harness --------------------------------------------------
    def _cache(self):
        if self._result_cache is None:
            from .experiments.common import ResultCache

            self._result_cache = ResultCache(self.options.cache_path())
        return self._result_cache

    def run_app(self, app: str, scheme: str, scale: str = "bench",
                verify: bool = False, on_error: str = "degrade",
                spec: str | None = None):
        """One (app, scheme) simulation cell via the experiment harness.

        ``spec`` overrides the session's spec *name* for this cell (the
        harness resolves it independently), which is what lets one service
        session serve requests against any spec.
        """
        from .experiments.common import run_app

        with self._scope():
            return run_app(app, scheme, spec or self.spec_name, scale,
                           cache=self._cache(), verify=verify,
                           on_error=on_error)

    def request(self, req):
        """Execute one typed protocol request in-process.

        Accepts the :mod:`repro.service.protocol` compute requests
        (:class:`~repro.service.protocol.CompileRequest`,
        :class:`~repro.service.protocol.AnalyzeRequest`,
        :class:`~repro.service.protocol.CattRequest`,
        :class:`~repro.service.protocol.RunAppRequest`) and returns the
        matching typed Response — the same objects a
        :class:`~repro.service.client.ServiceClient` returns for the same
        request, so local and remote execution swap freely.
        """
        from .service.handlers import execute_request

        return execute_request(self, req)

    def sweep(self, cells=None, scale: str = "bench", policy=None,
              resume: bool = False):
        """Populate this session's cache with simulation cells.

        ``cells=None`` sweeps everything ``catt all`` consumes; jobs come
        from the session options.  ``policy`` is a
        :class:`~repro.experiments.sweep.SweepPolicy` (deadlines/retries);
        ``resume=True`` replays the write-ahead journal of an interrupted
        sweep and recomputes only what is missing.
        """
        from .experiments.sweep import all_cells, run_sweep

        with self._scope():
            return run_sweep(cells if cells is not None else all_cells(scale),
                             jobs=self.options.jobs, cache=self._cache(),
                             options=self.options, policy=policy,
                             resume=resume)

    # -- observability ------------------------------------------------------
    def spans(self):
        """Root spans collected so far (tracing must be enabled)."""
        return _trace_mod.tracer().roots

    def metrics_snapshot(self) -> dict:
        return metrics_registry.registry().snapshot()

    def render_trace(self) -> str:
        return render_tree(self.spans(), self.metrics_snapshot()
                           if self.options.metrics else None)

    def write_trace(self, path: str | Path, fmt: str = "chrome") -> Path:
        """Dump collected spans: ``fmt`` is ``"chrome"`` or ``"jsonl"``."""
        import json

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        if fmt == "chrome":
            payload = to_chrome_trace(self.spans(), self.metrics_snapshot())
            path.write_text(json.dumps(payload, indent=1) + "\n")
        elif fmt == "jsonl":
            path.write_text(to_jsonl(self.spans()))
        else:
            raise ValueError(f"unknown trace format {fmt!r}")
        return path

    def write_manifest(self, path: str | Path, command: str = "session",
                       extra_config: dict | None = None) -> Path:
        config = {"spec": self.spec_name, **self.options.summary()}
        if extra_config:
            config.update(extra_config)
        manifest = build_manifest(
            command, config, spans=self.spans(),
            metrics=self.metrics_snapshot() if self.options.metrics else None,
        )
        return write_manifest(manifest, path)

    def reset_observability(self) -> None:
        _trace_mod.tracer().reset()
        metrics_registry.registry().reset()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Session(spec={self.spec_name!r}, options={self.options})"
