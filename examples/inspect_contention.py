"""A tour of the CATT static analysis on different access patterns.

Feeds four archetypal kernels through the analysis (no simulation) and
prints, for each loop: the affine coefficients (Eq. 5), the per-warp request
counts (Eq. 7), the footprint vs. L1D capacity (Eq. 8), and the throttling
decision (Eq. 9) — including the conservative irregular case and the
unresolvable CORR-style case.

Run:  python examples/inspect_contention.py
"""

from repro import TITAN_V_SIM, analyze_kernel, format_analysis, parse

PATTERNS = {
    "coalesced (column walk, no throttling needed)": """
#define N 1024
__global__ void column_walk(float *A, float *y, float *x) {
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    for (int i = 0; i < 256; i++) {
        y[j] += A[i * N + j] * x[i];
    }
}
""",
    "divergent (row walk -> warp-level throttling)": """
#define N 256
__global__ void row_walk(float *A, float *x, float *y) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    for (int j = 0; j < N; j++) {
        y[i] += A[i * N + j] * x[j];
    }
}
""",
    "irregular (graph gather -> conservative, untouched)": """
__global__ void gather(int *starts, int *edges, float *val, float *out) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    for (int e = starts[tid]; e < starts[tid + 1]; e++) {
        out[tid] += val[edges[e]];
    }
}
""",
    "unresolvable (nested sweep too large at any TLP)": """
#define M 2048
__global__ void pairwise(float *data, float *out) {
    int j1 = blockIdx.x * blockDim.x + threadIdx.x;
    for (int j2 = 0; j2 < M; j2++) {
        float s = 0.0f;
        for (int i = 0; i < 2048; i++) {
            s += data[i * M + j1] * data[i * M + j2];
        }
        out[j1 * M + j2] = s;
    }
}
""",
}


def main():
    for title, src in PATTERNS.items():
        print("=" * 72)
        print(title)
        print("=" * 72)
        unit = parse(src)
        kernel = unit.kernels()[0]
        analysis = analyze_kernel(unit, kernel.name, 256, TITAN_V_SIM, grid=4)
        print(format_analysis(analysis))
        print()


if __name__ == "__main__":
    main()
