"""The production path: analyze the compiler's PTX output, not the source.

Deployed behind nvcc, CATT would see PTX.  This example lowers the Fig.-1
kernel to the PTX-like ISA, prints it, and shows the IR-level analysis
recovering exactly the paper's coefficients — C_tid = {1, NY, 0} for
tmp/A/B — from nothing but the instruction stream plus the launch config.

Run:  python examples/ptx_pipeline.py
"""

from repro import parse
from repro.ptx import analyze_ptx_kernel, lower_kernel, parse_ptx

SOURCE = """
#define NX 1024
#define NY 192

__global__ void atax_kernel1(float *A, float *x, float *tmp) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < NX) {
        for (int j = 0; j < NY; j++) {
            tmp[i] += A[i * NY + j] * x[j];
        }
    }
}
"""


def main():
    unit = parse(SOURCE)
    ptx = lower_kernel(unit, "atax_kernel1")
    text = ptx.render()
    print("=== lowered PTX ===")
    print(text)

    # Round-trip through the textual form, as if reading an nvcc artifact.
    module = parse_ptx(text)
    kernel = module.kernel("atax_kernel1")

    print("=== IR-level analysis (block = 256 threads) ===")
    for acc in analyze_ptx_kernel(kernel, block_dim=(256, 1, 1)):
        kind = "store" if acc.is_store else "load"
        if acc.address.irregular:
            print(f"  {kind:5s} @{acc.index:3d}: irregular -> REQ_warp = 1 "
                  f"(conservative)")
        else:
            print(f"  {kind:5s} @{acc.index:3d}: C_tid = {acc.c_tid_elems} "
                  f"elems, C_i = {acc.c_iter_bytes()} B/iter "
                  f"-> REQ_warp = {acc.req_warp}")
    print("\nCompare with §3.1: tmp (1, 0), A (NY, 1), x (0, 1); A needs 32 "
          "transactions per warp — the footprint Eq. 8 charges against the "
          "L1D.")


if __name__ == "__main__":
    main()
