"""L1D-capacity sensitivity (the §5.1.3 experiment on one app).

Runs GSMV — uniformly contended — at the maximum L1D and at the 32 KB
configuration, with and without CATT.  On the smaller cache both the
contention and CATT's win grow (the paper: +42.96% at max L1D vs +89.23% at
32 KB, geomean over the CS group).

Run:  python examples/l1d_sensitivity.py
"""

from repro.sim.arch import TITAN_V_SIM, TITAN_V_SIM_32K
from repro.transform import catt_compile
from repro.workloads import get_workload, run_workload


def main():
    print(f"{'L1D':8s} {'scheme':9s} {'cycles':>12s} {'L1 hit rate':>12s}")
    for label, spec in (("max", TITAN_V_SIM), ("32KB", TITAN_V_SIM_32K)):
        wl = get_workload("GSMV", "bench")
        base = run_workload(wl, spec)
        comp = catt_compile(wl.unit(), dict(wl.launch_configs()), spec)
        catt = run_workload(get_workload("GSMV", "bench"), spec, unit=comp.unit)
        for scheme, run in (("baseline", base), ("CATT", catt)):
            hit = list(run.hit_rate_by_kernel().values())[0]
            print(f"{label:8s} {scheme:9s} {run.total_cycles:>12,} {hit:>11.1%}")
        print(f"{label:8s} -> CATT speedup "
              f"{base.total_cycles / catt.total_cycles:.2f}x")
    print("\nExpected shape: the 32KB speedup exceeds the max-L1D speedup.")


if __name__ == "__main__":
    main()
