"""Why per-loop beats best-fixed throttling: the ATAX multi-phase case.

The application has two kernels with *opposite* memory behaviour:

* kernel 1 walks rows (divergent — needs throttling);
* kernel 2 walks columns (coalesced — throttling only wastes TLP).

BFTT must pick ONE fixed TLP for the whole app; CATT decides per loop.  This
script reproduces §5.1's ATAX discussion: CATT matches BFTT on kernel 1 and
beats it on kernel 2 (or equivalently overall), because BFTT's best fixed
compromise still throttles the kernel that did not need it — or leaves the
contended one under-throttled.

Run:  python examples/multi_phase_app.py
"""

from repro.baselines import bftt_search
from repro.sim.arch import TITAN_V_SIM
from repro.transform import catt_compile
from repro.workloads import get_workload, run_workload


def main():
    spec = TITAN_V_SIM
    make = lambda: get_workload("ATAX", "bench")

    print("simulating baseline ...")
    base = run_workload(make(), spec)

    print("CATT: compile-time per-loop decisions ...")
    wl = make()
    comp = catt_compile(wl.unit(), dict(wl.launch_configs()), spec)
    for name, t in comp.transforms.items():
        desc = ", ".join(f"loop {lid}: split N={n}" for lid, n in t.warp_splits) \
            or "untouched"
        print(f"  {name}: {desc}")
    catt = run_workload(make(), spec, unit=comp.unit)

    print("BFTT: exhaustive fixed-TLP search (this simulates every config) ...")
    bftt = bftt_search(make, spec)
    print(f"  best fixed factors (N, M) = {bftt.best_factors}, "
          f"sweep = {{(n,m): cycles}} = "
          f"{{{', '.join(f'{k}: {r.total_cycles:,}' for k, r in bftt.runs.items())}}}")

    print(f"\n{'scheme':9s} {'total cycles':>14s}  per kernel")
    for label, run in (("baseline", base), ("BFTT", bftt.best_run), ("CATT", catt)):
        per_kernel = ", ".join(f"{k}={v:,}" for k, v in run.cycles_by_kernel().items())
        print(f"{label:9s} {run.total_cycles:>14,}  {per_kernel}")

    print(f"\nspeedup vs baseline: "
          f"BFTT {base.total_cycles / bftt.best_cycles:.2f}x, "
          f"CATT {base.total_cycles / catt.total_cycles:.2f}x")


if __name__ == "__main__":
    main()
