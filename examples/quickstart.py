"""Quickstart: compile a contended kernel with CATT and measure the win.

Runs the paper's flagship example (ATAX kernel 1, Fig. 1): a row-major
matrix-vector product whose ``A[i*NY+j]`` walk is fully divergent, thrashing
the L1D.  CATT's static analysis finds the footprint, picks a warp-throttling
factor (Eq. 9), splits the loop into guarded warp groups (Fig. 4), and the
simulator shows the L1D hit rate and execution time recovering.

Everything goes through one :class:`repro.Session` — the typed facade over
the whole pipeline.  Its :class:`repro.SimOptions` carries the engine/dedup
knobs explicitly (no environment variables), and ``trace=True`` records a
span tree of every phase, printed at the end.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Session, SimOptions, format_analysis

SOURCE = """
#define NX 1024
#define NY 192

__global__ void atax_kernel1(float *A, float *x, float *tmp) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < NX) {
        for (int j = 0; j < NY; j++) {
            tmp[i] += A[i * NY + j] * x[j];
        }
    }
}
"""

GRID, BLOCK = 4, 256


def run(sess, unit, label):
    rng = np.random.default_rng(7)
    A = rng.standard_normal((1024, 192)).astype(np.float32)
    x = rng.standard_normal(192).astype(np.float32)
    dA, dx, dtmp = sess.to_device(A), sess.to_device(x), sess.zeros(1024)
    res = sess.launch(unit, "atax_kernel1", GRID, BLOCK, [dA, dx, dtmp])
    np.testing.assert_allclose(dtmp.to_host(), A @ x, rtol=1e-3)
    print(f"{label:10s} cycles={res.cycles:>9,}  L1D hit rate={res.l1_hit_rate:6.1%}  "
          f"TLP=({res.occupancy.warps_per_tb} warps/TB x {res.occupancy.tb_sm} TBs)")
    return res.cycles


def main():
    # The with-block closes the session on exit, flushing its result cache.
    with Session("max", SimOptions(engine="compiled", dedup=True,
                                   trace=True, metrics=True)) as sess:
        unit = sess.compile(SOURCE)

        print("=== CATT static analysis ===")
        comp = sess.catt(unit, {"atax_kernel1": (GRID, BLOCK)})
        print(format_analysis(comp.transforms["atax_kernel1"].analysis))
        print()

        print("=== Simulated execution (1 SM of a Titan V) ===")
        base = run(sess, unit, "baseline")
        catt = run(sess, comp.unit, "CATT")
        print(f"\nCATT speedup: {base / catt:.2f}x  "
              f"(paper reports up to ~3x for individual CS kernels)")

        print("\n=== Pipeline trace (Session(trace=True)) ===")
        print(sess.render_trace())


if __name__ == "__main__":
    main()
