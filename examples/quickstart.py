"""Quickstart: compile a contended kernel with CATT and measure the win.

Runs the paper's flagship example (ATAX kernel 1, Fig. 1): a row-major
matrix-vector product whose ``A[i*NY+j]`` walk is fully divergent, thrashing
the L1D.  CATT's static analysis finds the footprint, picks a warp-throttling
factor (Eq. 9), splits the loop into guarded warp groups (Fig. 4), and the
simulator shows the L1D hit rate and execution time recovering.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Device, TITAN_V_SIM, catt_compile, format_analysis, parse

SOURCE = """
#define NX 1024
#define NY 192

__global__ void atax_kernel1(float *A, float *x, float *tmp) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < NX) {
        for (int j = 0; j < NY; j++) {
            tmp[i] += A[i * NY + j] * x[j];
        }
    }
}
"""

GRID, BLOCK = 4, 256


def run(unit, label):
    rng = np.random.default_rng(7)
    A = rng.standard_normal((1024, 192)).astype(np.float32)
    x = rng.standard_normal(192).astype(np.float32)
    dev = Device(TITAN_V_SIM)
    dA, dx, dtmp = dev.to_device(A), dev.to_device(x), dev.zeros(1024)
    res = dev.launch(unit, "atax_kernel1", GRID, BLOCK, [dA, dx, dtmp])
    np.testing.assert_allclose(dtmp.to_host(), A @ x, rtol=1e-3)
    print(f"{label:10s} cycles={res.cycles:>9,}  L1D hit rate={res.l1_hit_rate:6.1%}  "
          f"TLP=({res.occupancy.warps_per_tb} warps/TB x {res.occupancy.tb_sm} TBs)")
    return res.cycles


def main():
    unit = parse(SOURCE)

    print("=== CATT static analysis ===")
    comp = catt_compile(unit, {"atax_kernel1": (GRID, BLOCK)}, TITAN_V_SIM)
    print(format_analysis(comp.transforms["atax_kernel1"].analysis))
    print()

    print("=== Simulated execution (1 SM of a Titan V) ===")
    base = run(unit, "baseline")
    catt = run(comp.unit, "CATT")
    print(f"\nCATT speedup: {base / catt:.2f}x  "
          f"(paper reports up to ~3x for individual CS kernels)")


if __name__ == "__main__":
    main()
